"""QUIC frames (RFC 9000 §19) — the subset that appears in handshake flights.

Initial and Handshake packets in background radiation carry CRYPTO frames
(the TLS handshake), ACKs, PADDING (to satisfy the 1200-byte minimum), and
occasionally CONNECTION_CLOSE.  NEW_CONNECTION_ID / RETIRE_CONNECTION_ID are
implemented because CID rotation is central to the load-balancing discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.buffer import BufferError_, Reader, Writer
from repro.quic.varint import encode_varint, read_varint


class FrameParseError(ValueError):
    """Raised when a payload cannot be parsed as a sequence of frames."""


@dataclass(frozen=True)
class PaddingFrame:
    """One or more 0x00 bytes; ``length`` counts the run."""

    length: int = 1
    type_byte = 0x00


@dataclass(frozen=True)
class PingFrame:
    type_byte = 0x01


@dataclass(frozen=True)
class AckRange:
    """A contiguous range of acknowledged packet numbers (inclusive)."""

    smallest: int
    largest: int

    def __post_init__(self) -> None:
        if self.smallest > self.largest:
            raise FrameParseError("inverted ACK range")


@dataclass(frozen=True)
class AckFrame:
    """ACK without ECN counts (type 0x02)."""

    largest_acked: int
    ack_delay: int = 0
    ranges: tuple[AckRange, ...] = ()
    type_byte = 0x02

    def acknowledges(self, packet_number: int) -> bool:
        return any(r.smallest <= packet_number <= r.largest for r in self.ranges)


@dataclass(frozen=True)
class CryptoFrame:
    """Carries TLS handshake bytes at a stream-like offset (type 0x06)."""

    offset: int
    data: bytes
    type_byte = 0x06


@dataclass(frozen=True)
class NewConnectionIdFrame:
    """Issues an additional CID to the peer (type 0x18)."""

    sequence_number: int
    retire_prior_to: int
    connection_id: bytes
    stateless_reset_token: bytes = b"\x00" * 16
    type_byte = 0x18


@dataclass(frozen=True)
class RetireConnectionIdFrame:
    sequence_number: int
    type_byte = 0x19


@dataclass(frozen=True)
class ConnectionCloseFrame:
    """Transport-level close (type 0x1c)."""

    error_code: int
    frame_type: int = 0
    reason: bytes = b""
    type_byte = 0x1C


Frame = object  # informal union of the dataclasses above


def encode_frames(frames: list) -> bytes:
    """Serialize a list of frames into a packet payload."""
    writer = Writer()
    for frame in frames:
        _encode_one(writer, frame)
    return writer.getvalue()


def _encode_one(writer: Writer, frame) -> None:
    if isinstance(frame, PaddingFrame):
        writer.write(b"\x00" * frame.length)
    elif isinstance(frame, PingFrame):
        writer.write_u8(0x01)
    elif isinstance(frame, AckFrame):
        _encode_ack(writer, frame)
    elif isinstance(frame, CryptoFrame):
        writer.write_u8(0x06)
        writer.write(encode_varint(frame.offset))
        writer.write(encode_varint(len(frame.data)))
        writer.write(frame.data)
    elif isinstance(frame, NewConnectionIdFrame):
        writer.write_u8(0x18)
        writer.write(encode_varint(frame.sequence_number))
        writer.write(encode_varint(frame.retire_prior_to))
        writer.write_u8(len(frame.connection_id))
        writer.write(frame.connection_id)
        writer.write(frame.stateless_reset_token)
    elif isinstance(frame, RetireConnectionIdFrame):
        writer.write_u8(0x19)
        writer.write(encode_varint(frame.sequence_number))
    elif isinstance(frame, ConnectionCloseFrame):
        writer.write_u8(0x1C)
        writer.write(encode_varint(frame.error_code))
        writer.write(encode_varint(frame.frame_type))
        writer.write(encode_varint(len(frame.reason)))
        writer.write(frame.reason)
    else:
        raise FrameParseError("cannot encode frame of type %r" % type(frame))


def _encode_ack(writer: Writer, frame: AckFrame) -> None:
    if not frame.ranges:
        raise FrameParseError("ACK frame needs at least one range")
    ordered = sorted(frame.ranges, key=lambda r: r.largest, reverse=True)
    if ordered[0].largest != frame.largest_acked:
        raise FrameParseError("largest_acked does not match first range")
    writer.write_u8(0x02)
    writer.write(encode_varint(frame.largest_acked))
    writer.write(encode_varint(frame.ack_delay))
    writer.write(encode_varint(len(ordered) - 1))
    first = ordered[0]
    writer.write(encode_varint(first.largest - first.smallest))
    previous_smallest = first.smallest
    for rng in ordered[1:]:
        gap = previous_smallest - rng.largest - 2
        if gap < 0:
            raise FrameParseError("ACK ranges overlap or are unsorted")
        writer.write(encode_varint(gap))
        writer.write(encode_varint(rng.largest - rng.smallest))
        previous_smallest = rng.smallest


def decode_frames(payload: bytes) -> list:
    """Parse a plaintext packet payload into frames.

    Runs of PADDING bytes are collapsed into a single
    :class:`PaddingFrame` with the run length.
    """
    reader = Reader(payload)
    frames: list = []
    try:
        while not reader.at_end():
            frame_type = reader.peek(1)[0]
            if frame_type == 0x00:
                # PADDING runs are long (Initial datagrams are padded to
                # 1200 bytes); measure the run with a C-speed scan.
                rest = reader.data[reader.pos :]
                run = len(rest) - len(rest.lstrip(b"\x00"))
                reader.skip(run)
                frames.append(PaddingFrame(length=run))
            elif frame_type == 0x01:
                reader.skip(1)
                frames.append(PingFrame())
            elif frame_type in (0x02, 0x03):
                frames.append(_decode_ack(reader))
            elif frame_type == 0x06:
                reader.skip(1)
                offset = read_varint(reader)
                length = read_varint(reader)
                frames.append(CryptoFrame(offset=offset, data=reader.read(length)))
            elif frame_type == 0x18:
                reader.skip(1)
                seq = read_varint(reader)
                retire = read_varint(reader)
                cid_len = reader.read_u8()
                cid = reader.read(cid_len)
                token = reader.read(16)
                frames.append(
                    NewConnectionIdFrame(
                        sequence_number=seq,
                        retire_prior_to=retire,
                        connection_id=cid,
                        stateless_reset_token=token,
                    )
                )
            elif frame_type == 0x19:
                reader.skip(1)
                frames.append(RetireConnectionIdFrame(read_varint(reader)))
            elif frame_type in (0x1C, 0x1D):
                reader.skip(1)
                error_code = read_varint(reader)
                inner_type = read_varint(reader) if frame_type == 0x1C else 0
                reason_len = read_varint(reader)
                frames.append(
                    ConnectionCloseFrame(
                        error_code=error_code,
                        frame_type=inner_type,
                        reason=reader.read(reason_len),
                    )
                )
            else:
                raise FrameParseError("unsupported frame type 0x%02x" % frame_type)
    except BufferError_ as exc:
        raise FrameParseError(str(exc)) from exc
    return frames


def _decode_ack(reader: Reader) -> AckFrame:
    frame_type = reader.read_u8()
    largest = read_varint(reader)
    delay = read_varint(reader)
    range_count = read_varint(reader)
    first_range = read_varint(reader)
    ranges = [AckRange(smallest=largest - first_range, largest=largest)]
    previous_smallest = largest - first_range
    for _ in range(range_count):
        gap = read_varint(reader)
        length = read_varint(reader)
        range_largest = previous_smallest - gap - 2
        ranges.append(
            AckRange(smallest=range_largest - length, largest=range_largest)
        )
        previous_smallest = range_largest - length
    if frame_type == 0x03:  # ECN counts follow
        for _ in range(3):
            read_varint(reader)
    return AckFrame(largest_acked=largest, ack_delay=delay, ranges=tuple(ranges))


def crypto_payload(frames: list) -> bytes:
    """Reassemble CRYPTO frame data from a single packet's frames."""
    chunks = sorted(
        (f for f in frames if isinstance(f, CryptoFrame)), key=lambda f: f.offset
    )
    out = bytearray()
    for chunk in chunks:
        if chunk.offset != len(out):
            raise FrameParseError("CRYPTO frames are not contiguous")
        out.extend(chunk.data)
    return bytes(out)
