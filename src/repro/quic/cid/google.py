"""Google's echo connection-ID behaviour.

The paper finds (§4.2) that Google SCIDs are statistically random and that
probing with attacker-chosen DCIDs shows Google servers *echo the first
8 bytes of the client-chosen DCID* as their SCID.  Backscatter from Google
therefore exposes what clients sent, not server-side structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.quic.cid.base import CidContext, CidScheme

CID_LENGTH = 8


@dataclass
class GoogleEchoScheme(CidScheme):
    """SCID = first 8 bytes of the client DCID (zero-padded if shorter)."""

    length: int = CID_LENGTH

    def generate(self, rng: random.Random, context: CidContext) -> bytes:
        echoed = context.client_dcid[:CID_LENGTH]
        if len(echoed) < CID_LENGTH:
            echoed = echoed + bytes(CID_LENGTH - len(echoed))
        return echoed


def echoes_client_dcid(scid: bytes, client_dcid: bytes) -> bool:
    """Check the active-probing signature: SCID repeats the client's DCID."""
    expected = client_dcid[:CID_LENGTH]
    if len(expected) < CID_LENGTH:
        expected = expected + bytes(CID_LENGTH - len(expected))
    return scid == expected
