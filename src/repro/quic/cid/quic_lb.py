"""QUIC-LB routable connection IDs (draft-ietf-quic-load-balancers-13).

The draft the paper references as the IETF's answer to CID-aware load
balancing.  We implement the *plaintext* algorithm: the first octet carries
a 3-bit config rotation and a 5-bit "length self-description" field, then a
server ID of configurable length, then a random nonce.  The paper uses the
first-octet semantics to argue Cloudflare does *not* deploy this draft
(their first byte 0x01 would imply a CID length of 1 or random bits).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.quic.cid.base import CidContext, CidScheme


class QuicLbError(ValueError):
    """Raised when a CID does not parse under a QUIC-LB configuration."""


@dataclass(frozen=True)
class QuicLbConfig:
    """One load-balancer configuration (shared by L4LB and servers)."""

    config_rotation: int = 0  # 0..6; 7 is reserved for "unroutable"
    server_id_length: int = 2  # bytes
    nonce_length: int = 5  # bytes

    def __post_init__(self) -> None:
        if not 0 <= self.config_rotation <= 6:
            raise QuicLbError("config rotation must be 0..6")
        if not 1 <= self.server_id_length <= 15:
            raise QuicLbError("server ID length must be 1..15 bytes")
        if self.nonce_length < 4:
            raise QuicLbError("nonce must be at least 4 bytes")

    @property
    def cid_length(self) -> int:
        return 1 + self.server_id_length + self.nonce_length


def encode(config: QuicLbConfig, server_id: int, nonce: int) -> bytes:
    """Build a routable CID: first octet, server ID, nonce."""
    if server_id >> (8 * config.server_id_length):
        raise QuicLbError("server ID does not fit configured length")
    if nonce >> (8 * config.nonce_length):
        raise QuicLbError("nonce does not fit configured length")
    # First octet: CR (3 bits) then the encoded remaining length (5 bits),
    # per the draft's length self-description.
    remaining = config.server_id_length + config.nonce_length
    first = (config.config_rotation << 5) | (remaining & 0x1F)
    return (
        bytes([first])
        + server_id.to_bytes(config.server_id_length, "big")
        + nonce.to_bytes(config.nonce_length, "big")
    )


def decode(config: QuicLbConfig, cid: bytes) -> tuple[int, int]:
    """Extract ``(server_id, nonce)`` from a routable CID."""
    if len(cid) != config.cid_length:
        raise QuicLbError(
            "CID length %d does not match config (%d)" % (len(cid), config.cid_length)
        )
    rotation = cid[0] >> 5
    if rotation != config.config_rotation:
        raise QuicLbError(
            "config rotation %d does not match config (%d)"
            % (rotation, config.config_rotation)
        )
    declared = cid[0] & 0x1F
    if declared != config.server_id_length + config.nonce_length:
        raise QuicLbError("length self-description mismatch")
    server_id = int.from_bytes(cid[1 : 1 + config.server_id_length], "big")
    nonce = int.from_bytes(cid[1 + config.server_id_length :], "big")
    return server_id, nonce


@dataclass
class QuicLbScheme(CidScheme):
    """Generator producing QUIC-LB plaintext routable CIDs."""

    config: QuicLbConfig = QuicLbConfig()

    def __post_init__(self) -> None:
        self.length = self.config.cid_length

    def generate(self, rng: random.Random, context: CidContext) -> bytes:
        nonce = rng.getrandbits(8 * self.config.nonce_length)
        return encode(self.config, context.host_id, nonce)
