"""Facebook mvfst structured connection IDs (paper Table 5).

mvfst's ``DefaultConnectionIdAlgo`` packs a CID version, host ID, worker ID,
and process ID into an 8-byte connection ID; the remaining bits are random.
Bit positions below use network bit order: bit 0 is the most significant bit
of the first byte.

=============  =========  =========  ==========  ===========  ================
SCID version   Version    Host ID    Worker ID   Process ID   Random bits
=============  =========  =========  ==========  ===========  ================
1              0-1        2-17       18-25       26           27-63
2              0-1        8-31       32-39       40           2-7, 41-63
=============  =========  =========  ==========  ===========  ================
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.quic.cid.base import CidContext, CidScheme

CID_LENGTH = 8
HOST_ID_BITS_V1 = 16
HOST_ID_BITS_V2 = 24
WORKER_ID_BITS = 8

#: Paper §4.2: mvfst SCID version 1 allows at most 2^16 host IDs.
MAX_HOST_ID_V1 = (1 << HOST_ID_BITS_V1) - 1
MAX_HOST_ID_V2 = (1 << HOST_ID_BITS_V2) - 1
MAX_WORKER_ID = (1 << WORKER_ID_BITS) - 1


class MvfstCidError(ValueError):
    """Raised when a CID cannot be parsed as an mvfst structured ID."""


@dataclass(frozen=True)
class MvfstCid:
    """Decoded fields of an mvfst connection ID."""

    version: int
    host_id: int
    worker_id: int
    process_id: int
    random_bits: int

    def encode(self, cid_bytes: int = CID_LENGTH) -> bytes:
        """Re-encode the fields into an 8-byte connection ID."""
        if self.version == 1:
            return _encode_v1(self)
        if self.version == 2:
            return _encode_v2(self)
        raise MvfstCidError("unsupported mvfst CID version %d" % self.version)


def _check_range(name: str, value: int, maximum: int) -> None:
    if not 0 <= value <= maximum:
        raise MvfstCidError("%s %d out of range [0, %d]" % (name, value, maximum))


def _encode_v1(cid: MvfstCid) -> bytes:
    _check_range("host_id", cid.host_id, MAX_HOST_ID_V1)
    _check_range("worker_id", cid.worker_id, MAX_WORKER_ID)
    _check_range("process_id", cid.process_id, 1)
    _check_range("random_bits", cid.random_bits, (1 << 37) - 1)
    value = (
        (1 << 62)  # version=1 in bits 0-1
        | (cid.host_id << 46)  # bits 2-17
        | (cid.worker_id << 38)  # bits 18-25
        | (cid.process_id << 37)  # bit 26
        | cid.random_bits  # bits 27-63
    )
    return value.to_bytes(CID_LENGTH, "big")


def _encode_v2(cid: MvfstCid) -> bytes:
    _check_range("host_id", cid.host_id, MAX_HOST_ID_V2)
    _check_range("worker_id", cid.worker_id, MAX_WORKER_ID)
    _check_range("process_id", cid.process_id, 1)
    _check_range("random_bits", cid.random_bits, (1 << 29) - 1)
    rand_high = cid.random_bits >> 23  # 6 bits -> bits 2-7
    rand_low = cid.random_bits & ((1 << 23) - 1)  # 23 bits -> bits 41-63
    value = (
        (2 << 62)  # version=2 in bits 0-1
        | (rand_high << 56)  # bits 2-7
        | (cid.host_id << 32)  # bits 8-31
        | (cid.worker_id << 24)  # bits 32-39
        | (cid.process_id << 23)  # bit 40
        | rand_low  # bits 41-63
    )
    return value.to_bytes(CID_LENGTH, "big")


def decode(cid: bytes) -> MvfstCid:
    """Decode an 8-byte connection ID as an mvfst structured ID.

    Raises :class:`MvfstCidError` for lengths other than 8 or for CID
    versions mvfst does not define (0 and 3).
    """
    if len(cid) != CID_LENGTH:
        raise MvfstCidError("mvfst CIDs are 8 bytes, got %d" % len(cid))
    value = int.from_bytes(cid, "big")
    version = value >> 62
    if version == 1:
        return MvfstCid(
            version=1,
            host_id=(value >> 46) & MAX_HOST_ID_V1,
            worker_id=(value >> 38) & MAX_WORKER_ID,
            process_id=(value >> 37) & 1,
            random_bits=value & ((1 << 37) - 1),
        )
    if version == 2:
        rand_high = (value >> 56) & 0x3F
        rand_low = value & ((1 << 23) - 1)
        return MvfstCid(
            version=2,
            host_id=(value >> 32) & MAX_HOST_ID_V2,
            worker_id=(value >> 24) & MAX_WORKER_ID,
            process_id=(value >> 23) & 1,
            random_bits=(rand_high << 23) | rand_low,
        )
    raise MvfstCidError("not an mvfst structured CID (version bits %d)" % version)


def try_decode(cid: bytes) -> MvfstCid | None:
    """Like :func:`decode` but returns None instead of raising."""
    try:
        return decode(cid)
    except MvfstCidError:
        return None


@dataclass
class MvfstScheme(CidScheme):
    """Generator producing mvfst structured SCIDs for a given server."""

    length: int = CID_LENGTH
    cid_version: int = 1

    def generate(self, rng: random.Random, context: CidContext) -> bytes:
        random_width = 37 if self.cid_version == 1 else 29
        cid = MvfstCid(
            version=self.cid_version,
            host_id=context.host_id,
            worker_id=context.worker_id,
            process_id=context.process_id,
            random_bits=rng.getrandbits(random_width),
        )
        return cid.encode()
