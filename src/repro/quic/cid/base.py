"""Scheme interface and the baseline random connection-ID generator."""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class CidContext:
    """Deployment-side inputs a scheme may encode into a connection ID."""

    host_id: int = 0
    worker_id: int = 0
    process_id: int = 0
    #: The DCID the client used in its first Initial (needed by echo schemes).
    client_dcid: bytes = b""


@dataclass
class CidScheme:
    """Base class: a connection-ID generator with a fixed output length."""

    length: int = 8

    def generate(self, rng: random.Random, context: CidContext) -> bytes:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclass
class RandomScheme(CidScheme):
    """Uniformly random IDs — what RFC 9000 suggests absent other needs."""

    def generate(self, rng: random.Random, context: CidContext) -> bytes:
        return rng.getrandbits(8 * self.length).to_bytes(self.length, "big")


@dataclass
class FixedPrefixScheme(CidScheme):
    """Random IDs behind a constant prefix; models assorted smaller stacks."""

    prefix: bytes = b""

    def generate(self, rng: random.Random, context: CidContext) -> bytes:
        tail = self.length - len(self.prefix)
        if tail < 0:
            raise ValueError("prefix longer than configured CID length")
        return self.prefix + rng.getrandbits(8 * tail).to_bytes(tail, "big")
