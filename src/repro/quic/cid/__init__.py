"""Connection-ID generation schemes used by hypergiant QUIC stacks.

The paper fingerprints deployments by the structure of server-chosen
connection IDs (SCIDs):

* Facebook's mvfst encodes host/worker/process IDs (:mod:`.mvfst`).
* Cloudflare uses 20-byte IDs with a fixed 0x01 first byte (:mod:`.cloudflare`).
* Google echoes the first 8 bytes of the client's DCID (:mod:`.google`).
* The IETF QUIC-LB draft defines routable CIDs (:mod:`.quic_lb`).
"""

from repro.quic.cid.base import CidContext, CidScheme, RandomScheme
from repro.quic.cid.mvfst import MvfstCid, MvfstScheme
from repro.quic.cid.cloudflare import CloudflareScheme, looks_like_cloudflare
from repro.quic.cid.google import GoogleEchoScheme
from repro.quic.cid.quic_lb import QuicLbConfig, QuicLbScheme

__all__ = [
    "CidContext",
    "CidScheme",
    "RandomScheme",
    "MvfstCid",
    "MvfstScheme",
    "CloudflareScheme",
    "looks_like_cloudflare",
    "GoogleEchoScheme",
    "QuicLbConfig",
    "QuicLbScheme",
]
