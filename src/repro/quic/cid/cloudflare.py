"""Cloudflare-style 20-byte connection IDs.

The paper (Table 4, §4.2) observes that Cloudflare SCIDs are always 20 bytes
with the first byte fixed to 0x01, and that further positions carry
recurring (structured) values.  The exact internal layout is not public; we
model it as::

    byte 0      : 0x01 (scheme tag)
    bytes 1-2   : colo ID (the serving data-center, low-entropy)
    byte 3      : metal ID (server within the colo)
    bytes 4-19  : random

which matches the observable properties the paper relies on: fixed first
byte, 20-byte length, and non-uniform nybble frequencies at the head of the
ID.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.quic.cid.base import CidContext, CidScheme

CID_LENGTH = 20
FIRST_BYTE = 0x01


@dataclass
class CloudflareScheme(CidScheme):
    """Generator for Cloudflare-like 20-byte SCIDs."""

    length: int = CID_LENGTH
    colo_id: int = 0

    def generate(self, rng: random.Random, context: CidContext) -> bytes:
        head = bytes(
            [
                FIRST_BYTE,
                (self.colo_id >> 8) & 0xFF,
                self.colo_id & 0xFF,
                context.host_id & 0xFF,
            ]
        )
        tail = rng.getrandbits(8 * (CID_LENGTH - 4)).to_bytes(CID_LENGTH - 4, "big")
        return head + tail


def looks_like_cloudflare(scid: bytes) -> bool:
    """The passive fingerprint the paper uses: 20 bytes, first byte 0x01."""
    return len(scid) == CID_LENGTH and scid[0] == FIRST_BYTE


def decode_colo_id(scid: bytes) -> int:
    """Extract the modelled colo ID (for validation against ground truth)."""
    if not looks_like_cloudflare(scid):
        raise ValueError("not a Cloudflare-style SCID")
    return (scid[1] << 8) | scid[2]
