"""QUIC packet headers (RFC 8999/9000 §17) and datagram coalescence.

Two representations are used throughout the library:

* :class:`LongHeaderPacket` / :class:`ShortHeaderPacket` — *logical* packets
  with plaintext frame payloads, produced by endpoints and consumed by
  :func:`encode_datagram`.
* :class:`ParsedLongHeader` — the *observable* header fields of a protected
  packet on the wire, produced by :func:`parse_long_header` without any key
  material.  This is the telescope's view: type bits, version, DCID, SCID,
  token and length are all in the clear for long-header packets.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

from repro import hotpath
from repro.buffer import BufferError_, Reader, Writer
from repro.hotpath import LruCache
from repro.quic.crypto.suites import PacketProtection, ProtectionError, TAG_LENGTH
from repro.quic.varint import encode_varint, read_varint, varint_length
from repro.quic.version import VERSION_NEGOTIATION

#: RFC 9000 §14.1: a client Initial must be carried in a datagram of at
#: least 1200 bytes.
MIN_INITIAL_DATAGRAM = 1200

FORM_BIT = 0x80
FIXED_BIT = 0x40


class PacketType(enum.Enum):
    """Long-header packet types plus the two special on-wire forms."""

    INITIAL = 0
    ZERO_RTT = 1
    HANDSHAKE = 2
    RETRY = 3
    VERSION_NEGOTIATION = 4
    ONE_RTT = 5

    @property
    def label(self) -> str:
        return {
            PacketType.INITIAL: "Initial",
            PacketType.ZERO_RTT: "0-RTT",
            PacketType.HANDSHAKE: "Handshake",
            PacketType.RETRY: "Retry",
            PacketType.VERSION_NEGOTIATION: "VersionNegotiation",
            PacketType.ONE_RTT: "1-RTT",
        }[self]


class PacketParseError(ValueError):
    """Raised when bytes cannot be parsed as a QUIC packet."""


@dataclass
class LongHeaderPacket:
    """A logical long-header packet with a plaintext payload."""

    packet_type: PacketType
    version: int
    dcid: bytes
    scid: bytes
    packet_number: int = 0
    payload: bytes = b""
    token: bytes = b""  # Initial only
    pn_length: int = 1

    def __post_init__(self) -> None:
        if self.packet_type not in (
            PacketType.INITIAL,
            PacketType.ZERO_RTT,
            PacketType.HANDSHAKE,
        ):
            raise PacketParseError(
                "LongHeaderPacket only represents Initial/0-RTT/Handshake"
            )
        if not 1 <= self.pn_length <= 4:
            raise PacketParseError("packet number length must be 1..4")


@dataclass
class ShortHeaderPacket:
    """A logical 1-RTT packet.

    Short headers carry no CID length on the wire: the receiver must know
    the length of the CIDs it issued (RFC 8999 §5.2) — which is exactly why
    load balancers need a fixed, configured CID length to route 1-RTT
    traffic (paper §2.2).
    """

    dcid: bytes
    packet_number: int = 0
    payload: bytes = b""
    pn_length: int = 1
    spin_bit: bool = False


@dataclass
class RetryPacket:
    """A Retry packet; carries a token and a 16-byte integrity tag."""

    version: int
    dcid: bytes
    scid: bytes
    retry_token: bytes


@dataclass
class VersionNegotiationPacket:
    """Server's answer to an unsupported version (RFC 8999 §6)."""

    dcid: bytes
    scid: bytes
    supported_versions: tuple[int, ...]


@dataclass
class ParsedLongHeader:
    """Cleartext header fields of one protected packet inside a datagram."""

    packet_type: PacketType
    version: int
    dcid: bytes
    scid: bytes
    token: bytes
    #: Offset of the packet-number field relative to the packet start.
    pn_offset: int
    #: Total length of this packet inside the datagram.
    packet_length: int
    #: Value of the Length field (packet number + protected payload).
    payload_length: int
    #: For Retry: token; for VN: supported versions.
    supported_versions: tuple[int, ...] = ()
    retry_token: bytes = b""


# ---------------------------------------------------------------------------
# Encoding — template fast path and the rebuild reference path
# ---------------------------------------------------------------------------


class PacketTemplate:
    """Precomputed long-header skeleton for one packet *shape*.

    A shape is everything that determines header bytes except the CID,
    token and packet-number *values*: type, version, field lengths.  The
    skeleton is built once per shape (engine flights reuse a handful of
    shapes per profile for a whole month) and rendering reduces to a
    ``bytearray`` copy plus three or four slice splices — no
    :class:`~repro.buffer.Writer`, no varint re-encoding.
    Byte-parity with the rebuild path is asserted per server profile in
    the template tests and re-checked by ``bench_hotpath.py``.
    """

    __slots__ = (
        "skeleton",
        "dcid_off",
        "scid_off",
        "token_off",
        "pn_off",
        "pn_length",
    )

    def __init__(
        self,
        packet_type: PacketType,
        version: int,
        dcid_len: int,
        scid_len: int,
        token_len: int,
        payload_len: int,
        pn_length: int,
    ) -> None:
        if dcid_len > 20 or scid_len > 20:
            raise PacketParseError("connection IDs are at most 20 bytes")
        if not 1 <= pn_length <= 4:
            raise PacketParseError("packet number length must be 1..4")
        skeleton = bytearray()
        skeleton.append(
            FORM_BIT | FIXED_BIT | (packet_type.value << 4) | (pn_length - 1)
        )
        skeleton += version.to_bytes(4, "big")
        skeleton.append(dcid_len)
        self.dcid_off = len(skeleton)
        skeleton += bytes(dcid_len)
        skeleton.append(scid_len)
        self.scid_off = len(skeleton)
        skeleton += bytes(scid_len)
        if packet_type is PacketType.INITIAL:
            skeleton += encode_varint(token_len)
            self.token_off = len(skeleton)
            skeleton += bytes(token_len)
        else:
            self.token_off = len(skeleton)
        length = pn_length + payload_len + TAG_LENGTH
        # Stable 2-byte-minimum Length varint, same as the rebuild path.
        skeleton += encode_varint(length, width=max(2, varint_length(length)))
        self.pn_off = len(skeleton)
        skeleton += bytes(pn_length)
        self.skeleton = skeleton
        self.pn_length = pn_length

    def render(
        self, dcid: bytes, scid: bytes, packet_number: int, token: bytes = b""
    ) -> bytes:
        """Splice the per-packet fields into a copy of the skeleton."""
        header = self.skeleton.copy()
        header[self.dcid_off : self.dcid_off + len(dcid)] = dcid
        header[self.scid_off : self.scid_off + len(scid)] = scid
        if token:
            header[self.token_off : self.token_off + len(token)] = token
        pn_length = self.pn_length
        header[self.pn_off :] = (
            packet_number & ((1 << (8 * pn_length)) - 1)
        ).to_bytes(pn_length, "big")
        return bytes(header)


class ShortPacketTemplate:
    """Short-header analogue of :class:`PacketTemplate` (1-RTT packets)."""

    __slots__ = ("first", "pn_length")

    def __init__(self, pn_length: int, spin_bit: bool) -> None:
        if not 1 <= pn_length <= 4:
            raise PacketParseError("packet number length must be 1..4")
        first = FIXED_BIT | (pn_length - 1)
        if spin_bit:
            first |= 0x20
        self.first = bytes([first])
        self.pn_length = pn_length

    def render(self, dcid: bytes, packet_number: int) -> bytes:
        pn_length = self.pn_length
        return (
            self.first
            + dcid
            + ((packet_number & ((1 << (8 * pn_length)) - 1)).to_bytes(pn_length, "big"))
        )


_PACKET_TEMPLATES = LruCache(1024)
_SHORT_TEMPLATES = LruCache(64)


def packet_template(
    packet_type: PacketType,
    version: int,
    dcid_len: int,
    scid_len: int,
    token_len: int,
    payload_len: int,
    pn_length: int,
) -> PacketTemplate:
    """Fetch (or build) the cached template for one long-header shape."""
    key = (packet_type, version, dcid_len, scid_len, token_len, payload_len, pn_length)
    return _PACKET_TEMPLATES.get_or_build(
        key, lambda: PacketTemplate(*key)
    )


def short_packet_template(pn_length: int, spin_bit: bool) -> ShortPacketTemplate:
    return _SHORT_TEMPLATES.get_or_build(
        (pn_length, spin_bit), lambda: ShortPacketTemplate(pn_length, spin_bit)
    )


def header_length(
    packet_type: PacketType,
    dcid_len: int,
    scid_len: int,
    token_len: int,
    payload_len: int,
    pn_length: int,
) -> int:
    """Length of the unprotected header for one long-header shape."""
    length = 1 + 4 + 1 + dcid_len + 1 + scid_len
    if packet_type is PacketType.INITIAL:
        length += varint_length(token_len) + token_len
    body = pn_length + payload_len + TAG_LENGTH
    return length + max(2, varint_length(body)) + pn_length


def encoded_packet_length(packet: LongHeaderPacket) -> int:
    """On-wire length of ``packet`` once protected (header + payload + tag)."""
    payload_len = len(packet.payload)
    return (
        header_length(
            packet.packet_type,
            len(packet.dcid),
            len(packet.scid),
            len(packet.token),
            payload_len,
            packet.pn_length,
        )
        + payload_len
        + TAG_LENGTH
    )


def encode_packet(
    packet: LongHeaderPacket,
    protection: PacketProtection,
    is_server: bool,
) -> bytes:
    """Serialize and protect one long-header packet."""
    if hotpath.enabled:
        template = packet_template(
            packet.packet_type,
            packet.version,
            len(packet.dcid),
            len(packet.scid),
            len(packet.token),
            len(packet.payload),
            packet.pn_length,
        )
        header = template.render(
            packet.dcid, packet.scid, packet.packet_number, packet.token
        )
        return protection.protect(
            is_server, header, packet.packet_number, packet.payload
        )
    return _encode_packet_rebuild(packet, protection, is_server)


def _encode_packet_rebuild(
    packet: LongHeaderPacket,
    protection: PacketProtection,
    is_server: bool,
) -> bytes:
    """Field-by-field reference encoder (parity baseline for templates)."""
    writer = Writer()
    first = (
        FORM_BIT
        | FIXED_BIT
        | (packet.packet_type.value << 4)
        | (packet.pn_length - 1)
    )
    writer.write_u8(first)
    writer.write_u32(packet.version)
    _write_cid(writer, packet.dcid)
    _write_cid(writer, packet.scid)
    if packet.packet_type is PacketType.INITIAL:
        writer.write(encode_varint(len(packet.token)))
        writer.write(packet.token)
    length = packet.pn_length + len(packet.payload) + TAG_LENGTH
    # Always use a 2-byte varint for Length so headers have a stable size,
    # matching common stack behaviour (and simplifying padding math).
    writer.write(encode_varint(length, width=max(2, varint_length(length))))
    pn_encoded = (packet.packet_number & ((1 << (8 * packet.pn_length)) - 1)).to_bytes(
        packet.pn_length, "big"
    )
    writer.write(pn_encoded)
    header = writer.getvalue()
    return protection.protect(is_server, header, packet.packet_number, packet.payload)


def encode_retry(packet: RetryPacket) -> bytes:
    """Serialize a Retry packet.

    The 16-byte Retry integrity tag is modelled as a SHA-256 truncation of
    the pseudo-packet; real stacks use AES-GCM with a fixed key (RFC 9001
    §5.8).  Telescope analyses never validate this tag, only observe it.
    """
    writer = Writer()
    writer.write_u8(FORM_BIT | FIXED_BIT | (PacketType.RETRY.value << 4))
    writer.write_u32(packet.version)
    _write_cid(writer, packet.dcid)
    _write_cid(writer, packet.scid)
    writer.write(packet.retry_token)
    tag = hashlib.sha256(b"quic-retry" + writer.getvalue()).digest()[:16]
    writer.write(tag)
    return writer.getvalue()


def encode_version_negotiation(packet: VersionNegotiationPacket) -> bytes:
    """Serialize a Version Negotiation packet (version field zero)."""
    writer = Writer()
    writer.write_u8(FORM_BIT | 0x2A)  # unused bits can be arbitrary; be stable
    writer.write_u32(VERSION_NEGOTIATION)
    _write_cid(writer, packet.dcid)
    _write_cid(writer, packet.scid)
    for version in packet.supported_versions:
        writer.write_u32(version)
    return writer.getvalue()


def _write_cid(writer: Writer, cid: bytes) -> None:
    if len(cid) > 20:
        raise PacketParseError("connection IDs are at most 20 bytes")
    writer.write_u8(len(cid))
    writer.write(cid)


@dataclass
class CoalescedDatagram:
    """Builder for a UDP datagram carrying one or more QUIC packets."""

    packets: list[bytes] = field(default_factory=list)

    def add(self, encoded_packet: bytes) -> "CoalescedDatagram":
        self.packets.append(encoded_packet)
        return self

    def build(self) -> bytes:
        return b"".join(self.packets)


def encode_datagram(
    packets: list[LongHeaderPacket],
    protection: PacketProtection,
    is_server: bool,
    pad_to: int = 0,
) -> bytes:
    """Protect and coalesce ``packets`` into one datagram.

    If ``pad_to`` is non-zero and the datagram would be shorter, the *last*
    packet's payload is extended with PADDING frames (0x00 bytes) so the
    datagram reaches the target size — the standard way stacks satisfy the
    1200-byte Initial minimum.

    On the template fast path the padding deficit is computed analytically
    from :func:`encoded_packet_length`, so every packet — padded last one
    included — is sealed exactly once.  The reference path below measures
    by encoding and then re-encodes the padded tail packet, i.e. seals it
    twice; both produce identical bytes.
    """
    if not packets:
        raise PacketParseError("cannot encode an empty datagram")
    if hotpath.enabled:
        pad = 0
        if pad_to:
            total = sum(encoded_packet_length(p) for p in packets)
            if total < pad_to:
                pad = pad_to - total
        parts = []
        tail = len(packets) - 1
        for index, packet in enumerate(packets):
            payload = packet.payload
            if pad and index == tail:
                # One-shot pad of the tail packet, not an accumulation.
                payload = payload + b"\x00" * pad
            template = packet_template(
                packet.packet_type,
                packet.version,
                len(packet.dcid),
                len(packet.scid),
                len(packet.token),
                len(payload),
                packet.pn_length,
            )
            header = template.render(
                packet.dcid, packet.scid, packet.packet_number, packet.token
            )
            parts.append(
                protection.protect(is_server, header, packet.packet_number, payload)
            )
        return b"".join(parts)
    encoded = [_encode_packet_rebuild(p, protection, is_server) for p in packets]
    total = sum(len(e) for e in encoded)
    if pad_to and total < pad_to:
        deficit = pad_to - total
        last = packets[-1]
        padded = LongHeaderPacket(
            packet_type=last.packet_type,
            version=last.version,
            dcid=last.dcid,
            scid=last.scid,
            packet_number=last.packet_number,
            payload=last.payload + b"\x00" * deficit,
            token=last.token,
            pn_length=last.pn_length,
        )
        encoded[-1] = _encode_packet_rebuild(padded, protection, is_server)
    return b"".join(encoded)


@dataclass
class ParsedShortHeader:
    """Cleartext fields of a 1-RTT packet (given a known CID length)."""

    dcid: bytes
    pn_offset: int
    spin_bit: bool


def encode_short_packet(
    packet: ShortHeaderPacket,
    protection: PacketProtection,
    is_server: bool,
) -> bytes:
    """Serialize and protect one 1-RTT packet.

    The library reuses the connection's Initial-derived suite for 1-RTT
    protection (a documented simplification — real stacks switch to
    handshake-derived keys, which changes no observable header byte).
    """
    if not 1 <= packet.pn_length <= 4:
        raise PacketParseError("packet number length must be 1..4")
    if hotpath.enabled:
        header = short_packet_template(packet.pn_length, packet.spin_bit).render(
            packet.dcid, packet.packet_number
        )
        return protection.protect(
            is_server, header, packet.packet_number, packet.payload
        )
    writer = Writer()
    first = FIXED_BIT | (packet.pn_length - 1)
    if packet.spin_bit:
        first |= 0x20
    writer.write_u8(first)
    writer.write(packet.dcid)
    pn_encoded = (
        packet.packet_number & ((1 << (8 * packet.pn_length)) - 1)
    ).to_bytes(packet.pn_length, "big")
    writer.write(pn_encoded)
    header = writer.getvalue()
    return protection.protect(is_server, header, packet.packet_number, packet.payload)


def parse_short_header(
    data: bytes, cid_length: int, offset: int = 0
) -> ParsedShortHeader:
    """Parse a 1-RTT header; the receiver supplies its own CID length."""
    if offset >= len(data):
        raise PacketParseError("empty packet")
    first = data[offset]
    if first & FORM_BIT:
        raise PacketParseError("long-header packet, not 1-RTT")
    if not first & FIXED_BIT:
        raise PacketParseError("fixed bit is zero")
    if offset + 1 + cid_length > len(data):
        raise PacketParseError("packet shorter than the configured CID length")
    return ParsedShortHeader(
        dcid=data[offset + 1 : offset + 1 + cid_length],
        pn_offset=1 + cid_length,
        spin_bit=bool(first & 0x20),
    )


def unprotect_short_packet(
    parsed: ParsedShortHeader,
    packet_bytes: bytes,
    protection: PacketProtection,
    from_server: bool,
) -> ShortHeaderPacket:
    """Remove protection from a parsed 1-RTT packet."""
    plaintext, packet_number, pn_length = protection.unprotect(
        from_server, packet_bytes, parsed.pn_offset
    )
    return ShortHeaderPacket(
        dcid=parsed.dcid,
        packet_number=packet_number,
        payload=plaintext,
        pn_length=pn_length,
        spin_bit=parsed.spin_bit,
    )


# ---------------------------------------------------------------------------
# Parsing (keyless — the telescope view)
# ---------------------------------------------------------------------------


def parse_long_header(data: bytes, offset: int = 0) -> ParsedLongHeader:
    """Parse the cleartext fields of the long-header packet at ``offset``.

    Works on protected packets: every returned field is transmitted in the
    clear.  ``packet_length`` tells callers where the next coalesced packet
    begins.
    """
    reader = Reader(data, offset)
    try:
        first = reader.read_u8()
        if not first & FORM_BIT:
            raise PacketParseError("not a long-header packet")
        version = reader.read_u32()
        dcid_len = reader.read_u8()
        if dcid_len > 20:
            raise PacketParseError("DCID length %d exceeds 20" % dcid_len)
        dcid = reader.read(dcid_len)
        scid_len = reader.read_u8()
        if scid_len > 20:
            raise PacketParseError("SCID length %d exceeds 20" % scid_len)
        scid = reader.read(scid_len)

        if version == VERSION_NEGOTIATION:
            versions = []
            while reader.remaining >= 4:
                versions.append(reader.read_u32())
            return ParsedLongHeader(
                packet_type=PacketType.VERSION_NEGOTIATION,
                version=version,
                dcid=dcid,
                scid=scid,
                token=b"",
                pn_offset=reader.pos - offset,
                packet_length=reader.pos - offset,
                payload_length=0,
                supported_versions=tuple(versions),
            )

        if not first & FIXED_BIT:
            raise PacketParseError("fixed bit is zero")

        packet_type = PacketType((first >> 4) & 0x03)
        if packet_type is PacketType.RETRY:
            retry_token = reader.read_rest()
            if len(retry_token) < 16:
                raise PacketParseError("Retry packet shorter than integrity tag")
            return ParsedLongHeader(
                packet_type=packet_type,
                version=version,
                dcid=dcid,
                scid=scid,
                token=b"",
                pn_offset=len(data) - offset,
                packet_length=len(data) - offset,
                payload_length=0,
                retry_token=retry_token[:-16],
            )

        token = b""
        if packet_type is PacketType.INITIAL:
            token_length = read_varint(reader)
            token = reader.read(token_length)
        payload_length = read_varint(reader)
        pn_offset = reader.pos - offset
        packet_length = pn_offset + payload_length
        if offset + packet_length > len(data):
            raise PacketParseError(
                "declared length %d overruns datagram" % payload_length
            )
        return ParsedLongHeader(
            packet_type=packet_type,
            version=version,
            dcid=dcid,
            scid=scid,
            token=token,
            pn_offset=pn_offset,
            packet_length=packet_length,
            payload_length=payload_length,
        )
    except BufferError_ as exc:
        raise PacketParseError(str(exc)) from exc


def decode_datagram(data: bytes) -> list[tuple[ParsedLongHeader, bytes]]:
    """Split a datagram into its coalesced packets (keyless).

    Returns a list of ``(parsed_header, packet_bytes)`` pairs.  A trailing
    short-header packet (first byte without the form bit) terminates the
    scan and is not returned — telescope analyses only use long headers.
    Raises :class:`PacketParseError` if the datagram starts with bytes that
    are not a QUIC long header.
    """
    out: list[tuple[ParsedLongHeader, bytes]] = []
    offset = 0
    while offset < len(data):
        first = data[offset]
        if not first & FORM_BIT:
            break  # short-header packet or padding: end of long-header chain
        parsed = parse_long_header(data, offset)
        out.append((parsed, data[offset : offset + parsed.packet_length]))
        if parsed.packet_type in (
            PacketType.VERSION_NEGOTIATION,
            PacketType.RETRY,
        ):
            break
        offset += parsed.packet_length
    if not out:
        raise PacketParseError("datagram does not start with a long-header packet")
    return out


def unprotect_packet(
    parsed: ParsedLongHeader,
    packet_bytes: bytes,
    protection: PacketProtection,
    from_server: bool,
) -> LongHeaderPacket:
    """Remove protection from a parsed Initial/Handshake/0-RTT packet."""
    if parsed.packet_type in (PacketType.RETRY, PacketType.VERSION_NEGOTIATION):
        raise ProtectionError("%s packets are not protected" % parsed.packet_type.label)
    plaintext, packet_number, pn_length = protection.unprotect(
        from_server, packet_bytes, parsed.pn_offset
    )
    return LongHeaderPacket(
        packet_type=parsed.packet_type,
        version=parsed.version,
        dcid=parsed.dcid,
        scid=parsed.scid,
        packet_number=packet_number,
        payload=plaintext,
        token=parsed.token,
        pn_length=pn_length,
    )
