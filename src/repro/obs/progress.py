"""Cross-process progress plane: atomic heartbeat files, live rendering.

A month-at-paper-scale sharded run is opaque from the outside: workers
are separate processes, their traces are per-process files, and the
parent blocks in ``pool.map``.  This module gives every worker a
*heartbeat file* — one small JSON document, rewritten atomically (tmp +
``os.replace``, the node_exporter textfile-collector discipline already
used by :class:`~repro.obs.export.PromFileWriter`) — in a shared
progress directory next to the output pcap.  Readers never see a torn
write: they either get the previous complete document or the new one.

``repro progress <target>`` aggregates the directory into a table;
``repro top <target>`` follows it live.  The heartbeat carries enough
for an ETA: events done vs. expected, a rolling rate, the stage and the
last span the worker passed through.

ETA calibration: a traffic unit's ``weight`` counts its *packets*, but
the loop processes more events than packets (timers, deliveries,
flushes).  Measured on the standard scenario, the ratio is ~2.3 events
per unit of weight (:data:`EVENTS_PER_WEIGHT`); shard totals are scaled
by it so the ETA denominator is in the same currency as the numerator.
"""

from __future__ import annotations

import glob
import json
import os
import time as _wall
from typing import List, Optional

from repro.core.report import render_table

#: Event-loop events per unit of traffic-unit weight (measured ~2.28 on
#: the standard scenario; see ``benchmarks/bench_prof.py``).  Used only
#: for ETA display, never in any simulated decision.
EVENTS_PER_WEIGHT = 2.3

#: Heartbeat filename suffix; ``read_heartbeats`` globs for it, so the
#: pid-unique ``.tmp`` staging files are invisible to readers.
HEARTBEAT_SUFFIX = ".hb.json"


class HeartbeatWriter:
    """One worker's progress file, atomically rewritten at most ~2 Hz.

    ``total`` is the worker's expected event count (its shard weight
    times :data:`EVENTS_PER_WEIGHT`); ``update`` calls are cheap when
    rate-limited away, so callers can invoke it from tight loops.
    """

    def __init__(
        self,
        directory: str,
        worker: int,
        total: float = 0.0,
        min_interval: float = 0.5,
    ) -> None:
        self.directory = directory
        self.worker = worker
        self.total = total
        self.min_interval = min_interval
        self.path = os.path.join(directory, "worker%d%s" % (worker, HEARTBEAT_SUFFIX))
        self._tmp = self.path + ".%d.tmp" % os.getpid()
        self._started = _wall.time()
        self._last_write = 0.0
        os.makedirs(directory, exist_ok=True)

    def update(
        self,
        stage: str,
        done: float = 0.0,
        records: int = 0,
        span: str = "",
        sim_time: float = 0.0,
        final: bool = False,
    ) -> bool:
        """Rewrite the heartbeat; returns True if a write happened.

        Rate-limited to one write per ``min_interval`` wall seconds
        except when ``final`` (completion must always land).
        """
        now = _wall.time()
        if not final and now - self._last_write < self.min_interval:
            return False
        self._last_write = now
        elapsed = now - self._started
        rate = done / elapsed if elapsed > 0 else 0.0
        remaining = max(self.total - done, 0.0)
        eta = remaining / rate if rate > 0 and self.total else None
        doc = {
            "worker": self.worker,
            "pid": os.getpid(),
            "stage": stage,
            "done": done,
            "total": self.total,
            "records": records,
            "span": span,
            "sim_time": round(sim_time, 6),
            "started": self._started,
            "updated": now,
            "rate": round(rate, 3),
            "eta": round(eta, 3) if eta is not None else None,
            "status": "done" if final else "running",
        }
        with open(self._tmp, "w") as fileobj:
            json.dump(doc, fileobj, separators=(",", ":"))
            fileobj.write("\n")
        os.replace(self._tmp, self.path)
        return True

    def close(self) -> None:
        try:
            os.remove(self._tmp)
        except OSError:
            pass


def clean_progress_dir(directory: str) -> None:
    """Drop stale heartbeats so a new run starts with an empty table."""
    # repro: allow(DET005) -- deleting every match: removal order cannot leak
    for path in glob.glob(os.path.join(directory, "*" + HEARTBEAT_SUFFIX)):
        try:
            os.remove(path)
        except OSError:
            pass


def read_heartbeats(
    directory: str, skipped: Optional[List[str]] = None
) -> List[dict]:
    """All readable heartbeats in ``directory``, sorted by worker index.

    Tolerant by design: a heartbeat deleted between the directory listing
    and the read (a finishing run cleaning up under a live ``repro top``),
    mid-replace, or containing garbage bytes is skipped rather than
    failing the whole table.  ``ValueError`` covers both malformed JSON
    and non-UTF-8 content (``UnicodeDecodeError``), neither of which a
    renderer polling someone else's files can prevent.  ``skipped``, if
    given, collects the basenames of files that were passed over so the
    caller can surface a one-line note.
    """
    beats = []
    for path in sorted(glob.glob(os.path.join(directory, "*" + HEARTBEAT_SUFFIX))):
        try:
            with open(path) as fileobj:
                doc = json.load(fileobj)
        except (OSError, ValueError):
            if skipped is not None:
                skipped.append(os.path.basename(path))
            continue
        if isinstance(doc, dict):
            beats.append(doc)
    beats.sort(key=lambda d: d.get("worker", 0))
    return beats


def resolve_progress_dir(target: str) -> str:
    """Map a CLI target to its progress directory.

    Accepts the directory itself, the simulate output path (the run
    writes heartbeats to ``<output>.progress/``), or a sweep output
    directory (``repro sweep run`` writes per-cell heartbeats to
    ``<outdir>/progress/``).  Exits with a one-line error when none
    exists — progress inspection must never traceback on a
    finished/cleaned run.
    """
    if os.path.isdir(target):
        nested = os.path.join(target, "progress")
        if not glob.glob(
            os.path.join(target, "*" + HEARTBEAT_SUFFIX)
        ) and os.path.isdir(nested):
            return nested
        return target
    candidate = target + ".progress"
    if os.path.isdir(candidate):
        return candidate
    raise SystemExit(
        "error: no progress directory at %r or %r (is the run sharded and "
        "started, or already cleaned up?)" % (target, candidate)
    )


def aggregate(beats: List[dict]) -> dict:
    """Whole-run totals across worker heartbeats."""
    done = sum(b.get("done") or 0 for b in beats)
    total = sum(b.get("total") or 0 for b in beats)
    records = sum(b.get("records") or 0 for b in beats)
    running = [b for b in beats if b.get("status") != "done"]
    etas = [b["eta"] for b in running if b.get("eta") is not None]
    return {
        "workers": len(beats),
        "running": len(running),
        "done": done,
        "total": total,
        "records": records,
        "percent": 100.0 * done / total if total else 0.0,
        "eta": max(etas) if etas else None,
    }


def _format_eta(eta: Optional[float]) -> str:
    if eta is None:
        return "-"
    if eta >= 3600:
        return "%dh%02dm" % (eta // 3600, (eta % 3600) // 60)
    if eta >= 60:
        return "%dm%02ds" % (eta // 60, eta % 60)
    return "%.1fs" % eta


def render_progress(beats: List[dict], now: Optional[float] = None) -> str:
    """The per-worker progress table plus a one-line total."""
    if not beats:
        return "(no heartbeats yet)"
    now = _wall.time() if now is None else now
    rows = []
    for beat in beats:
        total = beat.get("total") or 0
        done = beat.get("done") or 0
        percent = 100.0 * done / total if total else 0.0
        age = now - beat.get("updated", now)
        rows.append(
            [
                beat.get("worker", "?"),
                beat.get("stage", "?"),
                "%.1f%%" % percent,
                int(done),
                int(total),
                beat.get("records", 0),
                "%.1f" % beat.get("sim_time", 0.0),
                _format_eta(beat.get("eta")) if beat.get("status") != "done" else "done",
                "%.1fs" % age,
            ]
        )
    table = render_table(
        ["worker", "stage", "pct", "events", "expected", "records", "sim_t", "eta", "age"],
        rows,
    )
    totals = aggregate(beats)
    summary = "total: %d/%d events (%.1f%%), %d records, %d/%d workers running, eta %s" % (
        totals["done"],
        totals["total"],
        totals["percent"],
        totals["records"],
        totals["running"],
        totals["workers"],
        _format_eta(totals["eta"]),
    )
    return table + "\n" + summary


def expected_events(weight: float) -> float:
    """ETA denominator for a shard of the given total unit weight."""
    return weight * EVENTS_PER_WEIGHT
