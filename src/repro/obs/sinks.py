"""Low-overhead trace sinks: deterministic sampling and in-memory rings.

A live :class:`~repro.obs.trace.JsonlTracer` serializes every event to
JSON, which costs ~30% on ``simulate`` (``BENCH_obs.json``) — too much to
leave on for the long runs that reproduce the paper's month-of-IBR
analyses.  The two sinks here make always-on tracing viable:

* :class:`SamplingTracer` forwards every Nth event *per event type*
  (``category:name``), so high-volume types (``transport:packet_received``)
  are thinned while every type still appears in the trace.  Rare
  lifecycle/security events — stateless resets, version negotiation,
  run start/end, workload launches — are on an always-keep list and never
  sampled away.  Sampling is counter-based, not random: the same run
  keeps the same events every time, so traces stay reproducible and
  diffable across ablations.

* :class:`RingBufferTracer` appends events to a bounded ring (O(1),
  no serialization) and keeps only the last ``capacity``.  It is the
  flight-recorder mode: near-zero overhead while running, and the recent
  history can be dumped to JSONL on demand — or on crash, since
  :meth:`close` dumps to ``dump_path`` and CLI commands close their
  sinks in a ``finally`` block.

Both compose with any inner/outer tracer: a scoped child shares the
parent's sampling counters (or ring), so per-worker tracers sample from
the same global sequence.
"""

from __future__ import annotations

import json
import time as _wall
from collections import deque
from typing import IO, Optional, Union

from repro.obs.trace import (
    CAT_SECURITY,
    CAT_SIM,
    CAT_WORKLOAD,
    Tracer,
)

#: Event types never sampled away: rare lifecycle/security signals whose
#: loss would blind the trace to exactly the anomalies worth keeping.
#: Entries are either a bare category or a full ``category:name`` key.
DEFAULT_ALWAYS_KEEP = frozenset(
    {
        CAT_SECURITY,  # stateless resets, retries, version negotiation
        CAT_SIM,  # run_start / run_end bracketing
        CAT_WORKLOAD,  # a handful of attack/scan launch markers
        "connectivity:migration_accepted",
        "recovery:flight_abandoned",
    }
)


class _SampleState:
    """Counters shared by a SamplingTracer and all its scoped children."""

    __slots__ = ("counts", "kept", "dropped")

    def __init__(self) -> None:
        self.counts: dict = {}
        self.kept = 0
        self.dropped = 0


class SamplingTracer(Tracer):
    """Forward every ``every``-th event per ``category:name`` to ``inner``.

    The first event of each type is always kept (count 0), so even a
    single occurrence of a type is visible in the sampled trace.
    """

    enabled = True

    def __init__(
        self,
        inner: Tracer,
        every: int = 64,
        always_keep: frozenset = DEFAULT_ALWAYS_KEEP,
        _state: Optional[_SampleState] = None,
    ) -> None:
        if every < 1:
            raise ValueError("sampling interval must be >= 1 (got %r)" % every)
        self.inner = inner
        self.every = every
        self.always_keep = frozenset(always_keep)
        # Pre-split for the hot path: bare categories vs (category, name)
        # pairs, so ``emit`` never builds a "category:name" string.
        self._keep_categories = frozenset(
            entry for entry in self.always_keep if ":" not in entry
        )
        self._keep_events = frozenset(
            tuple(entry.split(":", 1)) for entry in self.always_keep if ":" in entry
        )
        self._state = _state if _state is not None else _SampleState()

    @property
    def events_kept(self) -> int:
        return self._state.kept

    @property
    def events_dropped(self) -> int:
        return self._state.dropped

    def emit(self, category: str, name: str, time: float = 0.0, **fields) -> None:
        state = self._state
        key = (category, name)
        if category in self._keep_categories or key in self._keep_events:
            state.kept += 1
            self.inner.emit(category, name, time=time, sampled=1, **fields)
            return
        count = state.counts.get(key, 0)
        state.counts[key] = count + 1
        if count % self.every:
            state.dropped += 1
            return
        state.kept += 1
        # ``sampled`` records the thinning factor so tooling can rescale
        # counts (each kept event stands for ``every`` occurrences).
        self.inner.emit(category, name, time=time, sampled=self.every, **fields)

    def scoped(self, **context) -> "SamplingTracer":
        return SamplingTracer(
            self.inner.scoped(**context),
            every=self.every,
            always_keep=self.always_keep,
            _state=self._state,
        )

    def close(self) -> None:
        self.inner.close()


class RingBufferTracer(Tracer):
    """Keep the last ``capacity`` events in memory; serialize only on dump.

    Events are stored as plain dicts in the same shape a
    :class:`~repro.obs.trace.JsonlTracer` writes, so :meth:`dump` produces
    a byte-compatible JSONL trace of the retained window.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 65536,
        context: Optional[dict] = None,
        dump_path: Optional[str] = None,
        _buffer: Optional[deque] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1 (got %r)" % capacity)
        self.capacity = capacity
        self.dump_path = dump_path
        self._context = dict(context) if context else {}
        self._buffer: deque = _buffer if _buffer is not None else deque(maxlen=capacity)
        self.events_emitted = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def emit(self, category: str, name: str, time: float = 0.0, **fields) -> None:
        # Hot path: append a flat tuple; the JsonlTracer-shaped dict is only
        # built if the event survives to a dump.
        if self._context:
            merged = self._context.copy()
            merged.update(fields)
            fields = merged
        self._buffer.append((time, _wall.time(), category, name, fields))
        self.events_emitted += 1

    def scoped(self, **context) -> "RingBufferTracer":
        child = RingBufferTracer(
            capacity=self.capacity,
            context={**self._context, **context},
            _buffer=self._buffer,
        )
        return child

    @staticmethod
    def _record(entry: tuple) -> dict:
        time, wall, category, name, data = entry
        record = {
            "time": round(time, 9),
            "wall": wall,
            "category": category,
            "name": name,
        }
        if data:
            record["data"] = data
        return record

    def events(self) -> list:
        """The retained events as dicts, oldest first."""
        return [self._record(entry) for entry in self._buffer]

    def dump(self, sink: Union[str, IO[str]]) -> int:
        """Write the retained events as JSONL (oldest first); returns count."""
        if isinstance(sink, str):
            with open(sink, "w") as fileobj:
                return self.dump(fileobj)
        count = 0
        for entry in self._buffer:
            sink.write(json.dumps(self._record(entry), separators=(",", ":")) + "\n")
            count += 1
        return count

    def close(self) -> None:
        if self.dump_path is not None:
            self.dump(self.dump_path)


def install_signal_dump(tracer: RingBufferTracer, signum: Optional[int] = None) -> bool:
    """Dump ``tracer``'s ring to its ``dump_path`` when a signal arrives.

    Long runs in flight-recorder mode are otherwise opaque until they
    exit; ``kill -USR1 <pid>`` snapshots the retained window mid-run
    without stopping anything.  Defaults to ``SIGUSR1``.  Returns False —
    a documented no-op — on platforms without the signal (Windows) or
    when called off the main thread, where handlers cannot be installed.
    """
    import signal as _signal

    if signum is None:
        signum = getattr(_signal, "SIGUSR1", None)
        if signum is None:
            return False

    def _dump_on_signal(_signo, _frame) -> None:
        if tracer.dump_path is not None:
            tracer.dump(tracer.dump_path)

    try:
        _signal.signal(signum, _dump_on_signal)
    except ValueError:  # not the main thread
        return False
    return True
