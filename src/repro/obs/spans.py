"""Hierarchical spans over the flat tracer, and span-timeline merging.

qlog's event stream is flat; profiling a pipeline needs *nesting* — an
``engine.flight`` contains AEAD seals, a ``simulate.unit`` contains
thousands of flights.  A :class:`Span` is a context manager handed out by
:meth:`Observability.span <repro.obs.Observability.span>`: it pushes a
stage onto the profiler's tree (``repro.obs.prof``), and — when a tracer
is attached — emits a ``span:<name>`` event on exit carrying ``span``
and ``parent`` ids so flat JSONL traces reconstruct into a tree.  Span
ids come from the profiler's own counter, assigned before any sampling
decision, so parent links stay stable however events are thinned.

Without a profiler attached, ``obs.span(...)`` returns the shared
:data:`NULL_SPAN` — one attribute check and one identity return, keeping
the profiler-off hot path inside the existing overhead budget.

Determinism and the merged timeline: all span payloads are pure
functions of the scenario's keyed randomness (simulated times, unit
names, packet counts, connection ids), so the *canonical* form of a span
stream — volatile fields like wall clocks and process-local span ids
stripped — is identical whichever worker emitted it.
:func:`merge_span_timelines` k-way-merges per-worker span streams into
one time-ordered timeline exactly the way shard pcaps are merged, and
the result is byte-identical for any worker count.  Spans marked
``local=True`` (build/merge/index phases that exist once per *process*,
not once per simulated event) are excluded from the canonical stream.
"""

from __future__ import annotations

import heapq
import json
from typing import Iterable, List, Optional, Sequence

from repro.obs.trace import CAT_SPAN, read_trace

#: Fields stripped when canonicalizing span events: wall clocks and
#: process-local identifiers differ run-to-run; everything else is a
#: pure function of the scenario's keyed randomness.
VOLATILE_FIELDS = frozenset({"wall", "span", "parent", "wall_ms", "sampled"})


class Span:
    """A live stage: profiler node plus (optionally) a trace event on exit.

    Not reentrant and not thread-safe — one span object per ``with``
    block, like a file handle.  Extra keyword fields land in the trace
    event's ``data``; :meth:`note` adds or updates fields after entry
    (e.g. a flight's packet count, known only once it is built).
    """

    __slots__ = ("_obs", "_name", "_fields", "_node", "_start", "_id", "_parent")

    def __init__(self, obs, name: str, fields: dict) -> None:
        self._obs = obs
        self._name = name
        self._fields = fields
        self._node = None
        self._start = None
        self._id = 0
        self._parent = 0

    def note(self, **fields) -> None:
        """Attach or update payload fields before the span closes."""
        self._fields.update(fields)

    @property
    def span_id(self) -> int:
        return self._id

    @property
    def parent_id(self) -> int:
        return self._parent

    def __enter__(self) -> "Span":
        prof = self._obs.prof
        self._node, self._start, self._id, self._parent = prof.push(
            self._name, self._fields.get("profile")
        )
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        fields = self._fields
        packets = fields.get("packets", 0)
        self._obs.prof.pop(self._node, self._start, packets)
        tracer = self._obs.tracer
        if tracer.enabled:
            time = fields.pop("time", 0.0)
            tracer.emit(
                CAT_SPAN,
                self._name,
                time=time,
                span=self._id,
                parent=self._parent,
                **fields,
            )


class _NullSpan:
    """Inert span: the profiler-off fast path (shared singleton)."""

    __slots__ = ()

    def note(self, **fields) -> None:
        pass

    span_id = 0
    parent_id = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: Shared inert span; stateless, safe to hand out everywhere.
NULL_SPAN = _NullSpan()


def canonical_span_line(event: dict) -> Optional[str]:
    """One span event → its canonical JSON line (None if not canonical).

    Canonical events are category ``span`` without a ``local`` marker;
    volatile per-process fields are dropped and the rest serialized with
    sorted keys, so equal span payloads produce equal bytes regardless of
    which worker emitted them.
    """
    if event.get("category") != CAT_SPAN:
        return None
    data = event.get("data") or {}
    if data.get("local"):
        return None
    payload = {k: v for k, v in data.items() if k not in VOLATILE_FIELDS}
    return json.dumps(
        {"time": event.get("time", 0.0), "name": event.get("name"), "data": payload},
        sort_keys=True,
        separators=(",", ":"),
    )


def _sorted_span_stream(path: str) -> List[tuple]:
    """One trace's canonical spans as sorted ``(time, line)`` pairs.

    The sort mirrors :func:`~repro.netstack.pcap.record_sort_key`'s role
    for pcaps: same-instant spans order by their serialized bytes, a
    total order independent of emission interleaving.
    """
    pairs = []
    for event in read_trace(path):
        line = canonical_span_line(event)
        if line is not None:
            pairs.append((event.get("time", 0.0), line))
    pairs.sort()
    return pairs


def canonical_span_lines(path: str) -> List[str]:
    """All canonical span lines of one trace, in timeline order."""
    return [line for _time, line in _sorted_span_stream(path)]


def merge_span_timelines(paths: Sequence[str], output: str) -> int:
    """K-way-merge per-worker span streams into one canonical timeline.

    The span-stream analogue of
    :func:`~repro.netstack.pcap.merge_pcap_files`: each worker's trace is
    reduced to its canonical span lines and the sorted streams merge on
    ``(time, line)``.  Returns the number of spans written.  For a fixed
    scenario the output is byte-identical for any worker count, provided
    the traces are unsampled (a :class:`~repro.obs.sinks.SamplingTracer`
    thins per-process counters, which need not align across workers).
    """
    streams: Iterable = [_sorted_span_stream(path) for path in paths]
    count = 0
    with open(output, "w") as fileobj:
        for _time, line in heapq.merge(*streams):
            fileobj.write(line + "\n")
            count += 1
    return count
