"""Observability: qlog-style tracing, metrics, profiling, and progress.

One :class:`Observability` bundle is threaded through every layer of the
simulator — event loop, network, load balancers, server engines, the
telescope, and the sanitization pipeline.  The default :data:`NULL_OBS`
carries an inert tracer, no registry, and no profiler, so uninstrumented
runs pay only a falsy attribute check on hot paths.

The bundle's three planes:

* ``tracer`` — flat qlog-style event stream (:mod:`repro.obs.trace`),
* ``metrics`` — counters/gauges/histograms (:mod:`repro.obs.metrics`),
* ``prof`` — the hierarchical stage profiler (:mod:`repro.obs.prof`);
  :meth:`Observability.span` opens a stage on it and, when the tracer is
  live too, emits a ``span:*`` event with ``span``/``parent`` ids.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.export import (
    MetricsHttpExporter,
    PromFileWriter,
    render_prometheus,
    start_http_exporter,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    load_snapshot,
)
from repro.obs.prof import Profiler, validate_speedscope
from repro.obs.sinks import (
    DEFAULT_ALWAYS_KEEP,
    RingBufferTracer,
    SamplingTracer,
    install_signal_dump,
)
from repro.obs.spans import NULL_SPAN, Span, merge_span_timelines
from repro.obs.trace import (
    CAT_CAPSTORE,
    CAT_CONNECTIVITY,
    CAT_LB,
    CAT_NET,
    CAT_RECOVERY,
    CAT_SANITIZE,
    CAT_SECURITY,
    CAT_SIM,
    CAT_SPAN,
    CAT_SWEEP,
    CAT_TELESCOPE,
    CAT_TRANSPORT,
    CAT_WORKLOAD,
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    Tracer,
    read_trace,
)

__all__ = [
    "Observability",
    "NULL_OBS",
    "Tracer",
    "NullTracer",
    "JsonlTracer",
    "SamplingTracer",
    "RingBufferTracer",
    "install_signal_dump",
    "DEFAULT_ALWAYS_KEEP",
    "NULL_TRACER",
    "read_trace",
    "render_prometheus",
    "PromFileWriter",
    "MetricsHttpExporter",
    "start_http_exporter",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "load_snapshot",
    "Profiler",
    "validate_speedscope",
    "Span",
    "NULL_SPAN",
    "merge_span_timelines",
    "CAT_CAPSTORE",
    "CAT_CONNECTIVITY",
    "CAT_LB",
    "CAT_NET",
    "CAT_RECOVERY",
    "CAT_SANITIZE",
    "CAT_SECURITY",
    "CAT_SIM",
    "CAT_SPAN",
    "CAT_SWEEP",
    "CAT_TELESCOPE",
    "CAT_TRANSPORT",
    "CAT_WORKLOAD",
]


class Observability:
    """A tracer, optional metrics registry, and optional profiler."""

    __slots__ = ("tracer", "metrics", "prof")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        prof: Optional[Profiler] = None,
    ) -> None:
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = metrics
        self.prof = prof

    @property
    def enabled(self) -> bool:
        return (
            self.tracer.enabled or self.metrics is not None or self.prof is not None
        )

    def span(self, name: str, **fields):
        """Open a hierarchical stage span (see :mod:`repro.obs.spans`).

        Returns the shared inert :data:`NULL_SPAN` unless a profiler is
        attached — spans exist to feed the profiler's stage tree; the
        flat tracer alone keeps its existing event vocabulary, so
        ``--trace`` output without ``--profile`` is unchanged.
        """
        if self.prof is None:
            return NULL_SPAN
        return Span(self, name, fields)

    def close(self) -> None:
        self.tracer.close()


#: Shared inert bundle: falsy tracer, no registry, no profiler.
NULL_OBS = Observability()
