"""Observability: qlog-style tracing plus a metrics registry.

One :class:`Observability` bundle is threaded through every layer of the
simulator — event loop, network, load balancers, server engines, the
telescope, and the sanitization pipeline.  The default :data:`NULL_OBS`
carries an inert tracer and no registry, so uninstrumented runs pay only
a falsy attribute check on hot paths.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.export import (
    MetricsHttpExporter,
    PromFileWriter,
    render_prometheus,
    start_http_exporter,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    load_snapshot,
)
from repro.obs.sinks import (
    DEFAULT_ALWAYS_KEEP,
    RingBufferTracer,
    SamplingTracer,
    install_signal_dump,
)
from repro.obs.trace import (
    CAT_CAPSTORE,
    CAT_CONNECTIVITY,
    CAT_LB,
    CAT_NET,
    CAT_RECOVERY,
    CAT_SANITIZE,
    CAT_SECURITY,
    CAT_SIM,
    CAT_TELESCOPE,
    CAT_TRANSPORT,
    CAT_WORKLOAD,
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    Tracer,
    read_trace,
)

__all__ = [
    "Observability",
    "NULL_OBS",
    "Tracer",
    "NullTracer",
    "JsonlTracer",
    "SamplingTracer",
    "RingBufferTracer",
    "install_signal_dump",
    "DEFAULT_ALWAYS_KEEP",
    "NULL_TRACER",
    "read_trace",
    "render_prometheus",
    "PromFileWriter",
    "MetricsHttpExporter",
    "start_http_exporter",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "load_snapshot",
    "CAT_CAPSTORE",
    "CAT_CONNECTIVITY",
    "CAT_LB",
    "CAT_NET",
    "CAT_RECOVERY",
    "CAT_SANITIZE",
    "CAT_SECURITY",
    "CAT_SIM",
    "CAT_TELESCOPE",
    "CAT_TRANSPORT",
    "CAT_WORKLOAD",
]


class Observability:
    """A tracer and an optional metrics registry, passed down together."""

    __slots__ = ("tracer", "metrics")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.metrics = metrics

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics is not None

    def close(self) -> None:
        self.tracer.close()


#: Shared inert bundle: falsy tracer, no registry.
NULL_OBS = Observability()
