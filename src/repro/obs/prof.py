"""Deterministic hot-path profiler: stage tree, speedscope export.

The ROADMAP's "vectorize the per-packet hot path" item needs *attribution*
before optimization: which stage of which packet's lifecycle burns the
wall time — key derivation, AEAD sealing, header protection, dissection,
or plain event dispatch.  A conventional wall-clock sampling profiler
(SIGPROF / ``py-spy``) cannot answer that here, because the pipeline's
determinism gates forbid anything timing-dependent in the simulated path.
This profiler is therefore **event-count triggered**: which occurrences
of a stage get timed is a pure function of per-stage call counters, so
two runs of the same scenario sample the identical set of occurrences and
the shard/analyze byte-parity gates keep holding.  Wall clocks are read
*only* to measure the sampled occurrences; they never influence control
flow.

Structure:

* :class:`Profiler` owns a tree of :class:`_StageNode`\\ s, one per
  ``(path, profile)`` — the span layer (``repro.obs.spans``) pushes and
  pops named stages, hot leaves (AEAD, header protection, per-record
  dissection) use the cheaper :meth:`leaf_begin`/:meth:`leaf_end` pair.
* Every stage's first occurrence is always timed (rare stages are exact),
  then every ``every``-th after that; elapsed totals are rescaled by
  ``calls / sampled`` at snapshot time, so estimates stay unbiased for
  stages with homogeneous cost.
* :meth:`snapshot` / :meth:`merge_snapshot` mirror the metrics registry's
  pushgateway discipline: shard workers profile independently and the
  parent folds their trees into one.
* Exports: Prometheus histograms (``prof.stage_seconds`` per
  stage×profile, observed live into an attached registry) and
  speedscope-format JSON (:meth:`to_speedscope`) for flamegraph viewing
  at https://www.speedscope.app/.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Dict, List, Optional, Tuple

#: ``prof.stage_seconds`` histogram bounds: from single AEAD calls (~µs)
#: up to whole pipeline stages.  Static so shard workers always register
#: identical buckets (snapshot merging requires it).
STAGE_SECONDS_BOUNDS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0)

#: Path separator in snapshots and speedscope frame names.
PATH_SEP = "/"


class _StageNode:
    """One stage×profile aggregate in the profiler's call tree."""

    __slots__ = (
        "name",
        "profile",
        "parent",
        "children",
        "calls",
        "sampled",
        "wall",
        "packets",
        "path",
    )

    def __init__(
        self, name: str, profile: Optional[str], parent: Optional["_StageNode"]
    ) -> None:
        self.name = name
        self.profile = profile
        self.parent = parent
        self.children: Dict[Tuple[str, Optional[str]], _StageNode] = {}
        self.calls = 0
        self.sampled = 0
        self.wall = 0.0  # seconds actually measured (sampled occurrences)
        self.packets = 0
        if parent is None or not parent.name:
            self.path = name
        else:
            self.path = parent.path + PATH_SEP + name

    def child(self, name: str, profile: Optional[str]) -> "_StageNode":
        key = (name, profile)
        node = self.children.get(key)
        if node is None:
            node = self.children[key] = _StageNode(name, profile, self)
        return node

    def wall_estimate(self) -> float:
        """Estimated total wall seconds: measured, rescaled by sampling."""
        if not self.sampled:
            return 0.0
        return self.wall * (self.calls / self.sampled)

    def self_estimate(self) -> float:
        """Own time: estimate minus children (clamped — estimates can cross)."""
        children = sum(c.wall_estimate() for c in self.children.values())
        return max(self.wall_estimate() - children, 0.0)


class Profiler:
    """Event-count-sampled stage profiler (see module docstring).

    ``every`` is the sampling interval per stage node: occurrence 1 is
    always timed, then 1+every, 1+2·every… — deterministic for a given
    call sequence.  ``metrics``, when given, receives a
    ``prof.stage_seconds`` histogram observation (labels ``stage``,
    ``profile``) for every *measured* occurrence, so Prometheus dashboards
    see live per-stage latency without waiting for the speedscope dump.
    """

    def __init__(self, every: int = 64, metrics=None) -> None:
        if every < 1:
            raise ValueError("profiler sampling interval must be >= 1 (got %r)" % every)
        self.every = every
        self.metrics = metrics
        self.root = _StageNode("", None, None)
        self._stack: List[_StageNode] = [self.root]
        self._span_ids: List[int] = [0]
        self._next_id = 1
        self._hist = (
            metrics.histogram(
                "prof.stage_seconds", STAGE_SECONDS_BOUNDS, ("stage", "profile")
            )
            if metrics is not None
            else None
        )

    # ------------------------------------------------------------- span API
    @property
    def current_path(self) -> str:
        return self._stack[-1].path

    @property
    def current_span_id(self) -> int:
        return self._span_ids[-1]

    def push(self, name: str, profile: Optional[str] = None):
        """Enter a stage; returns ``(node, start, span_id, parent_id)``.

        Span ids are assigned to *every* occurrence from a plain counter —
        before any sampling decision — so parent/child links in the trace
        stay stable no matter how the profiler or a
        :class:`~repro.obs.sinks.SamplingTracer` thins events.
        """
        node = self._stack[-1].child(name, profile)
        node.calls += 1
        start = perf_counter() if (node.calls - 1) % self.every == 0 else None
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._span_ids[-1]
        self._stack.append(node)
        self._span_ids.append(span_id)
        return node, start, span_id, parent_id

    def pop(self, node: _StageNode, start: Optional[float], packets: int = 0) -> None:
        """Leave the current stage, accounting elapsed time if sampled."""
        self._stack.pop()
        self._span_ids.pop()
        node.packets += packets
        if start is not None:
            elapsed = perf_counter() - start
            node.sampled += 1
            node.wall += elapsed
            if self._hist is not None:
                self._hist.observe_key((node.name, node.profile or ""), elapsed)

    # ------------------------------------------------------------- leaf API
    def leaf_begin(self, name: str, profile: Optional[str] = None):
        """Cheap enter for leaf stages (no children, no trace events)."""
        node = self._stack[-1].child(name, profile)
        node.calls += 1
        start = perf_counter() if (node.calls - 1) % self.every == 0 else None
        return node, start

    def leaf_end(
        self, node: _StageNode, start: Optional[float], packets: int = 0
    ) -> None:
        node.packets += packets
        if start is not None:
            elapsed = perf_counter() - start
            node.sampled += 1
            node.wall += elapsed
            if self._hist is not None:
                self._hist.observe_key((node.name, node.profile or ""), elapsed)

    # ------------------------------------------------------------- export
    def _walk(self):
        """Yield every populated node, depth-first in sorted child order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is not self.root:
                yield node
            for key in sorted(node.children, reverse=True):
                stack.append(node.children[key])

    def snapshot(self) -> dict:
        """The whole tree as JSON-ready dicts (mergeable, see below)."""
        nodes = []
        for node in self._walk():
            segments = []
            cursor = node
            while cursor is not None and cursor.name:
                segments.append([cursor.name, cursor.profile])
                cursor = cursor.parent
            nodes.append(
                {
                    "path": list(reversed(segments)),
                    "calls": node.calls,
                    "sampled": node.sampled,
                    "wall": node.wall,
                    "packets": node.packets,
                }
            )
        return {"every": self.every, "nodes": nodes}

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another profiler's :meth:`snapshot` into this tree.

        The pushgateway step of a sharded run: each worker process
        profiles its shard, the parent merges.  Counters and measured
        seconds add; estimates are recomputed from the merged sums.
        """
        for entry in snapshot.get("nodes", ()):
            node = self.root
            for name, profile in entry["path"]:
                node = node.child(name, profile)
            node.calls += entry["calls"]
            node.sampled += entry["sampled"]
            node.wall += entry["wall"]
            node.packets += entry["packets"]

    def total_estimate(self) -> float:
        """Estimated wall seconds across all root-level stages."""
        return sum(c.wall_estimate() for c in self.root.children.values())

    def stage_totals(self) -> Dict[str, dict]:
        """Per stage *name* (summed over paths/profiles): self-time totals.

        This is the flat attribution table BENCH_prof.json records: for
        each stage name, estimated self seconds, calls, and packets.
        """
        totals: Dict[str, dict] = {}
        for node in self._walk():
            entry = totals.setdefault(
                node.name, {"self_seconds": 0.0, "calls": 0, "packets": 0}
            )
            entry["self_seconds"] += node.self_estimate()
            entry["calls"] += node.calls
            entry["packets"] += node.packets
        return totals

    def stage_shares(self) -> Dict[str, float]:
        """Each stage name's share of total estimated self time (sums to 1)."""
        totals = self.stage_totals()
        grand = sum(entry["self_seconds"] for entry in totals.values())
        if grand <= 0:
            return {}
        return {
            name: entry["self_seconds"] / grand for name, entry in totals.items()
        }

    def to_speedscope(self, name: str = "repro pipeline") -> dict:
        """The stage tree as a speedscope ``sampled`` profile document.

        One sample per populated node: the sample's stack is the node's
        path, its weight the node's *self* time (estimate minus children),
        so the flamegraph shows exactly where the pipeline's wall time
        went.  Viewable at https://www.speedscope.app/ or with the
        ``speedscope`` CLI.
        """
        frames: List[dict] = []
        frame_index: Dict[str, int] = {}

        def frame(label: str) -> int:
            if label not in frame_index:
                frame_index[label] = len(frames)
                frames.append({"name": label})
            return frame_index[label]

        samples: List[List[int]] = []
        weights: List[float] = []

        def descend(node: _StageNode, stack: List[int]) -> None:
            label = node.name if node.profile is None else (
                "%s [%s]" % (node.name, node.profile)
            )
            here = stack + [frame(label)]
            self_weight = node.self_estimate()
            if self_weight > 0 or not node.children:
                samples.append(here)
                weights.append(round(self_weight, 9))
            for key in sorted(node.children):
                descend(node.children[key], here)

        for key in sorted(self.root.children):
            descend(self.root.children[key], [])
        total = round(sum(weights), 9)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
            "activeProfileIndex": 0,
            "exporter": "repro-prof",
            "name": name,
        }

    def write_speedscope(self, path: str, name: str = "repro pipeline") -> None:
        with open(path, "w") as fileobj:
            json.dump(self.to_speedscope(name), fileobj, indent=1, sort_keys=True)
            fileobj.write("\n")


def validate_speedscope(doc: dict) -> List[str]:
    """Schema-check a speedscope document; returns problems (empty = valid).

    Covers the invariants the speedscope file-format schema enforces for
    the profile types this repo emits: required top-level keys, frame
    shape, and per-profile consistency (``sampled`` stacks reference real
    frames and pair 1:1 with weights; ``evented`` events stay in
    ``startValue..endValue``).
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if "$schema" not in doc:
        problems.append("missing $schema")
    frames = doc.get("shared", {}).get("frames")
    if not isinstance(frames, list):
        problems.append("shared.frames missing or not a list")
        frames = []
    for index, entry in enumerate(frames):
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            problems.append("frame %d lacks a string name" % index)
    profiles = doc.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        problems.append("profiles missing or empty")
        profiles = []
    for index, profile in enumerate(profiles):
        where = "profile %d" % index
        kind = profile.get("type")
        if kind not in ("sampled", "evented"):
            problems.append("%s: unknown type %r" % (where, kind))
            continue
        for field in ("name", "unit", "startValue", "endValue"):
            if field not in profile:
                problems.append("%s: missing %s" % (where, field))
        if kind == "sampled":
            samples = profile.get("samples", [])
            weights = profile.get("weights", [])
            if len(samples) != len(weights):
                problems.append(
                    "%s: %d samples vs %d weights"
                    % (where, len(samples), len(weights))
                )
            for sample in samples:
                if any(
                    not isinstance(i, int) or i < 0 or i >= len(frames)
                    for i in sample
                ):
                    problems.append("%s: sample references unknown frame" % where)
                    break
            if any(w < 0 for w in weights):
                problems.append("%s: negative weight" % where)
        else:  # evented
            start = profile.get("startValue", 0)
            end = profile.get("endValue", 0)
            for event in profile.get("events", []):
                if event.get("type") not in ("O", "C"):
                    problems.append("%s: bad event type %r" % (where, event.get("type")))
                    break
                if not start <= event.get("at", start) <= end:
                    problems.append("%s: event outside start/end range" % where)
                    break
    index = doc.get("activeProfileIndex")
    if index is not None and not (
        isinstance(index, int) and 0 <= index < max(len(profiles), 1)
    ):
        problems.append("activeProfileIndex out of range")
    return problems
