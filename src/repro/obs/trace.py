"""qlog-inspired structured event tracing.

The qlog format (draft-ietf-quic-qlog) taught QUIC implementers that a
protocol stack should narrate itself: every packet, timer, and routing
decision becomes one typed, timestamped event.  This module brings the
same idea to the simulator.  Events carry

* ``time`` — the *simulated* clock of the event (seconds),
* ``wall`` — the wall-clock instant it was recorded (Unix seconds),
* ``category`` / ``name`` — a two-level event type, qlog-style
  (``transport:packet_sent``, ``recovery:rto_fired``, ``lb:dispatch``…),
* ``data`` — free-form context fields (connection IDs, device names,
  drop reasons).

The default :data:`NULL_TRACER` is inert and falsy; hot paths guard with
``if tracer.enabled:`` so that a disabled run never even builds the field
dict.  :class:`JsonlTracer` writes one JSON object per line — the same
"stream of event objects" shape qlog's JSON-SEQ serialization uses — so
traces can be grepped, tailed, and loaded with one ``json.loads`` per
line.
"""

from __future__ import annotations

import json
import time as _wall
import warnings
from typing import IO, Iterable, Optional

# Two-level event taxonomy (category half of "category:name").
CAT_TRANSPORT = "transport"  # packets sent/received by QUIC endpoints
CAT_RECOVERY = "recovery"  # retransmission timers, abandoned flights
CAT_CONNECTIVITY = "connectivity"  # connection lifecycle, CIDs, migration
CAT_SECURITY = "security"  # stateless resets, retries, version negotiation
CAT_LB = "lb"  # L4 load-balancer dispatch decisions
CAT_NET = "net"  # simulated-Internet delivery and drops
CAT_SIM = "sim"  # event-loop lifecycle
CAT_TELESCOPE = "telescope"  # darknet capture
CAT_SANITIZE = "sanitize"  # classification pipeline decisions
CAT_WORKLOAD = "workload"  # traffic generators (attacks, scans, noise)
CAT_CAPSTORE = "capstore"  # columnar index build/load and cache decisions
CAT_SPAN = "span"  # hierarchical stage spans (span_id/parent_id links)
CAT_SWEEP = "sweep"  # parameter-grid cell lifecycle (repro.sweep)


class Tracer:
    """Interface: ``emit`` one event; ``scoped`` binds context fields."""

    #: Hot paths check this before building event fields.
    enabled = True

    def emit(self, category: str, name: str, time: float = 0.0, **fields) -> None:
        raise NotImplementedError

    def scoped(self, **context) -> "Tracer":
        """A tracer whose every event carries ``context`` as extra fields."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release the sink (no-op unless the tracer owns one)."""

    def __bool__(self) -> bool:
        return self.enabled


class NullTracer(Tracer):
    """Zero-overhead default: falsy, and ``emit`` does nothing."""

    enabled = False

    def emit(self, category: str, name: str, time: float = 0.0, **fields) -> None:
        pass

    def scoped(self, **context) -> "NullTracer":
        return self


#: Shared inert tracer; safe to reuse because it holds no state.
NULL_TRACER = NullTracer()


class JsonlTracer(Tracer):
    """Writes one compact JSON event object per line (qlog JSON-SEQ style)."""

    def __init__(
        self,
        sink: IO[str],
        context: Optional[dict] = None,
        _owns_sink: bool = False,
    ) -> None:
        self._sink = sink
        self._context = dict(context) if context else {}
        self._owns_sink = _owns_sink
        self.events_emitted = 0

    @classmethod
    def to_path(cls, path: str) -> "JsonlTracer":
        """Open ``path`` for writing; :meth:`close` will close it."""
        return cls(open(path, "w"), _owns_sink=True)

    def emit(self, category: str, name: str, time: float = 0.0, **fields) -> None:
        record = {
            "time": round(time, 9),
            "wall": _wall.time(),
            "category": category,
            "name": name,
        }
        data = {**self._context, **fields} if self._context else fields
        if data:
            record["data"] = data
        self._sink.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.events_emitted += 1

    def scoped(self, **context) -> "JsonlTracer":
        child = JsonlTracer(self._sink, context={**self._context, **context})
        return child

    def close(self) -> None:
        self._sink.flush()
        if self._owns_sink:
            self._sink.close()


def read_trace(path: str) -> Iterable[dict]:
    """Parse a JSONL trace back into event dicts (for tests and tooling).

    A process killed mid-write leaves a truncated final line; that tail is
    skipped with a :class:`RuntimeWarning` instead of raising
    ``json.JSONDecodeError``, so a crash dump stays loadable.  The warning
    goes through the :mod:`warnings` machinery — never stdout — so
    callers printing parseable output stay clean; CLI consumers catch it
    and re-print to stderr (see ``cmd_trace_summarize``).
    """
    with open(path) as fileobj:
        for lineno, line in enumerate(fileobj, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                warnings.warn(
                    "%s:%d: undecodable trace tail skipped (truncated write?)"
                    % (path, lineno),
                    RuntimeWarning,
                    stacklevel=2,
                )
                return
