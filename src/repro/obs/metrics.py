"""Named counters, gauges, histograms, and stage timers.

A :class:`MetricsRegistry` is the numeric half of the observability layer
(the tracer is the narrative half).  Instruments support low-cardinality
labels (origin AS, packet type, drop reason) stored as value tuples, so
the hot-path cost of an increment is one tuple hash and one dict add.
Two APIs coexist:

* ``counter.inc(1, outcome="delivered", device="telescope")`` — readable,
  used from cold paths;
* ``counter.inc_key(("delivered", "telescope"))`` — the hot-path form,
  skipping kwargs construction.

``snapshot()`` renders everything to plain dicts (JSON-ready); the CLI's
``repro stats`` pretty-prints such snapshots, and benches persist them as
machine-readable baselines.  :meth:`MetricsRegistry.time_block` is a
context manager accumulating wall-clock seconds per pipeline stage
(simulate, classify, analyze), which is how pkts/sec regressions get a
number attached.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence, Tuple

LabelKey = Tuple[str, ...]

#: Join character for label values in snapshot keys ("delivered|telescope").
KEY_SEP = "|"


def _key_from_labels(label_names: Sequence[str], labels: dict) -> LabelKey:
    if set(labels) != set(label_names):
        raise ValueError(
            "expected labels %r, got %r" % (tuple(label_names), tuple(labels))
        )
    return tuple(str(labels[name]) for name in label_names)


class Counter:
    """Monotonic sum per label tuple."""

    __slots__ = ("name", "label_names", "values")

    def __init__(self, name: str, label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.label_names = tuple(label_names)
        self.values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        self.inc_key(_key_from_labels(self.label_names, labels), amount)

    def inc_key(self, key: LabelKey = (), amount: float = 1) -> None:
        self.values[key] = self.values.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self.values.get(_key_from_labels(self.label_names, labels), 0)

    def total(self) -> float:
        return sum(self.values.values())

    def sum_where(self, **labels) -> float:
        """Sum over label tuples matching the given subset of labels."""
        positions = {self.label_names.index(k): str(v) for k, v in labels.items()}
        return sum(
            value
            for key, value in self.values.items()
            if all(key[i] == v for i, v in positions.items())
        )


class Gauge:
    """Last-written value per label tuple."""

    __slots__ = ("name", "label_names", "values")

    def __init__(self, name: str, label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.label_names = tuple(label_names)
        self.values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        self.values[_key_from_labels(self.label_names, labels)] = value

    def set_key(self, key: LabelKey, value: float) -> None:
        self.values[key] = value

    def value(self, **labels) -> float:
        return self.values.get(_key_from_labels(self.label_names, labels), 0)


class _HistogramSeries:
    __slots__ = ("counts", "count", "sum")

    def __init__(self, bucket_count: int) -> None:
        self.counts = [0] * bucket_count  # one per bound, plus +Inf overflow
        self.count = 0
        self.sum = 0.0


class Histogram:
    """Fixed-bucket histogram; the last bucket is the +Inf overflow."""

    __slots__ = ("name", "label_names", "bounds", "series")

    def __init__(
        self,
        name: str,
        bounds: Sequence[float],
        label_names: Sequence[str] = (),
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be a sorted, non-empty list")
        self.name = name
        self.label_names = tuple(label_names)
        self.bounds = tuple(float(b) for b in bounds)
        self.series: Dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels) -> None:
        self.observe_key(_key_from_labels(self.label_names, labels), value)

    def observe_key(self, key: LabelKey, value: float) -> None:
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = _HistogramSeries(len(self.bounds) + 1)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        series.counts[index] += 1
        series.count += 1
        series.sum += value

    def bucket_labels(self) -> list:
        return ["<=%g" % b for b in self.bounds] + ["+Inf"]


class MetricsRegistry:
    """Get-or-create home for every instrument, plus stage timers."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, list] = {}  # stage -> [seconds, calls]

    # -- instrument accessors -------------------------------------------------
    def counter(self, name: str, label_names: Sequence[str] = ()) -> Counter:
        return self._get(self._counters, Counter, name, label_names)

    def gauge(self, name: str, label_names: Sequence[str] = ()) -> Gauge:
        return self._get(self._gauges, Gauge, name, label_names)

    def histogram(
        self,
        name: str,
        bounds: Sequence[float],
        label_names: Sequence[str] = (),
    ) -> Histogram:
        existing = self._histograms.get(name)
        if existing is not None:
            if existing.label_names != tuple(label_names):
                raise ValueError(
                    "histogram %r re-registered with labels %r != %r"
                    % (name, tuple(label_names), existing.label_names)
                )
            return existing
        created = Histogram(name, bounds, label_names)
        self._histograms[name] = created
        return created

    def _get(self, store, cls, name, label_names):
        existing = store.get(name)
        if existing is not None:
            if existing.label_names != tuple(label_names):
                raise ValueError(
                    "%s %r re-registered with labels %r != %r"
                    % (cls.__name__, name, tuple(label_names), existing.label_names)
                )
            return existing
        created = cls(name, label_names)
        store[name] = created
        return created

    # -- stage timing ----------------------------------------------------------
    @contextmanager
    def time_block(self, stage: str) -> Iterator[None]:
        """Accumulate the wall-clock duration of a pipeline stage."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            entry = self._timers.setdefault(stage, [0.0, 0])
            entry[0] += elapsed
            entry[1] += 1

    def timer_seconds(self, stage: str) -> float:
        return self._timers.get(stage, [0.0, 0])[0]

    # -- export ----------------------------------------------------------------
    def snapshot(self) -> dict:
        """Everything, as JSON-ready plain dicts."""
        return {
            "counters": {
                c.name: {
                    "label_names": list(c.label_names),
                    "values": {KEY_SEP.join(k): v for k, v in sorted(c.values.items())},
                }
                for c in self._counters.values()
            },
            "gauges": {
                g.name: {
                    "label_names": list(g.label_names),
                    "values": {KEY_SEP.join(k): v for k, v in sorted(g.values.items())},
                }
                for g in self._gauges.values()
            },
            "histograms": {
                h.name: {
                    "label_names": list(h.label_names),
                    "buckets": h.bucket_labels(),
                    "bounds": list(h.bounds),
                    "values": {
                        KEY_SEP.join(k): {
                            "counts": list(s.counts),
                            "count": s.count,
                            "sum": s.sum,
                        }
                        for k, s in sorted(h.series.items())
                    },
                }
                for h in self._histograms.values()
            },
            "timers": {
                stage: {"seconds": seconds, "calls": calls}
                for stage, (seconds, calls) in sorted(self._timers.items())
            },
        }

    @staticmethod
    def _snapshot_key(label_names: Sequence[str], key_text: str) -> LabelKey:
        """Invert the ``KEY_SEP`` join of :meth:`snapshot` value keys."""
        if not label_names:
            return ()
        return tuple(key_text.split(KEY_SEP))

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        This is the pushgateway-style aggregation step of a sharded run:
        each worker process snapshots its registry, and the parent merges
        the snapshots so the existing exporters (``--metrics``,
        Prometheus file/HTTP) see whole-run numbers.  Counters, histogram
        series, and stage timers add element-wise.  Gauges add too: the
        gauges this pipeline sets (event totals, rates) are per-process
        quantities whose only meaningful cross-process combination is the
        sum — a last-writer-wins merge would report one arbitrary worker.
        """
        for name, body in snapshot.get("counters", {}).items():
            counter = self.counter(name, tuple(body.get("label_names", ())))
            for key_text, value in body.get("values", {}).items():
                counter.inc_key(
                    self._snapshot_key(counter.label_names, key_text), value
                )
        for name, body in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name, tuple(body.get("label_names", ())))
            for key_text, value in body.get("values", {}).items():
                key = self._snapshot_key(gauge.label_names, key_text)
                gauge.set_key(key, gauge.values.get(key, 0) + value)
        for name, body in snapshot.get("histograms", {}).items():
            bounds = body.get("bounds")
            if bounds is None:
                raise ValueError(
                    "histogram %r snapshot lacks 'bounds' "
                    "(written by an older version?)" % name
                )
            hist = self.histogram(name, bounds, tuple(body.get("label_names", ())))
            for key_text, series_body in body.get("values", {}).items():
                key = self._snapshot_key(hist.label_names, key_text)
                series = hist.series.get(key)
                if series is None:
                    series = hist.series[key] = _HistogramSeries(len(hist.bounds) + 1)
                for index, bucket_count in enumerate(series_body["counts"]):
                    series.counts[index] += bucket_count
                series.count += series_body["count"]
                series.sum += series_body["sum"]
        for stage, entry in snapshot.get("timers", {}).items():
            timer = self._timers.setdefault(stage, [0.0, 0])
            timer[0] += entry["seconds"]
            timer[1] += entry["calls"]

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Everything, in Prometheus text exposition format."""
        from repro.obs.export import render_prometheus

        return render_prometheus(self)

    def write(self, path: str) -> None:
        with open(path, "w") as fileobj:
            fileobj.write(self.to_json() + "\n")


def load_snapshot(path: str) -> dict:
    """Read back a snapshot written by :meth:`MetricsRegistry.write`."""
    with open(path) as fileobj:
        return json.load(fileobj)
