"""Prometheus text-format export for the metrics registry.

Long simulations should be *watchable*, not just post-mortem-analyzable.
This module renders a :class:`~repro.obs.metrics.MetricsRegistry` into the
Prometheus exposition format (text version 0.0.4) and publishes it two
ways:

* :class:`PromFileWriter` atomically rewrites a ``.prom`` file — the
  node_exporter *textfile collector* contract (write to a temp file in
  the same directory, then rename), so a collector never scrapes a
  half-written file;
* :func:`start_http_exporter` serves ``GET /metrics`` from a stdlib
  ``http.server`` on a daemon thread, scrapeable with curl or a real
  Prometheus while ``repro simulate`` runs.

Rendering rules follow the conventions: dots in instrument names become
underscores, counters gain a ``_total`` suffix, histograms expose
cumulative ``_bucket{le=…}`` series plus ``_sum``/``_count``, and stage
timers surface as ``repro_stage_seconds_total``/``repro_stage_calls_total``
labeled by stage.

Multiprocess runs (``repro simulate --workers N``) keep a single
exporter: worker registries never publish directly; the parent folds
their snapshots in via
:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`
(pushgateway-style) and both publishers here render the aggregated
registry.

Key entry points: :func:`render_prometheus`, :class:`PromFileWriter`,
:func:`start_http_exporter`.
"""

from __future__ import annotations

import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.metrics import MetricsRegistry

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    name = _NAME_SANITIZE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _label_name(name: str) -> str:
    name = _LABEL_SANITIZE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(
    label_names: Sequence[str], key: Tuple[str, ...], extra: Sequence[Tuple[str, str]] = ()
) -> str:
    pairs = [
        '%s="%s"' % (_label_name(n), _escape_label_value(v))
        for n, v in zip(label_names, key)
    ]
    pairs.extend('%s="%s"' % (n, _escape_label_value(v)) for n, v in extra)
    return "{%s}" % ",".join(pairs) if pairs else ""


def render_prometheus(registry: "MetricsRegistry") -> str:
    """The whole registry in Prometheus exposition format (one string)."""
    lines: List[str] = []

    for counter in sorted(registry._counters.values(), key=lambda c: c.name):
        name = _metric_name(counter.name)
        if not name.endswith("_total"):
            name += "_total"
        lines.append("# TYPE %s counter" % name)
        for key, value in sorted(counter.values.items()):
            lines.append(
                "%s%s %s"
                % (name, _labels_text(counter.label_names, key), _format_value(value))
            )

    for gauge in sorted(registry._gauges.values(), key=lambda g: g.name):
        name = _metric_name(gauge.name)
        lines.append("# TYPE %s gauge" % name)
        for key, value in sorted(gauge.values.items()):
            lines.append(
                "%s%s %s"
                % (name, _labels_text(gauge.label_names, key), _format_value(value))
            )

    for hist in sorted(registry._histograms.values(), key=lambda h: h.name):
        name = _metric_name(hist.name)
        lines.append("# TYPE %s histogram" % name)
        les = ["%g" % bound for bound in hist.bounds] + ["+Inf"]
        for key, series in sorted(hist.series.items()):
            cumulative = 0
            for le, bucket_count in zip(les, series.counts):
                cumulative += bucket_count
                lines.append(
                    "%s_bucket%s %d"
                    % (
                        name,
                        _labels_text(hist.label_names, key, extra=(("le", le),)),
                        cumulative,
                    )
                )
            labels = _labels_text(hist.label_names, key)
            lines.append("%s_sum%s %s" % (name, labels, _format_value(series.sum)))
            lines.append("%s_count%s %d" % (name, labels, series.count))

    timers = registry._timers
    if timers:
        lines.append("# TYPE repro_stage_seconds_total counter")
        for stage, (seconds, _calls) in sorted(timers.items()):
            lines.append(
                'repro_stage_seconds_total{stage="%s"} %s'
                % (_escape_label_value(stage), _format_value(seconds))
            )
        lines.append("# TYPE repro_stage_calls_total counter")
        for stage, (_seconds, calls) in sorted(timers.items()):
            lines.append(
                'repro_stage_calls_total{stage="%s"} %d'
                % (_escape_label_value(stage), calls)
            )

    return "\n".join(lines) + "\n" if lines else ""


class PromFileWriter:
    """Atomically rewrite a textfile-collector ``.prom`` file on demand.

    ``write()`` renders the registry to ``path + ".tmp"`` and renames it
    over ``path`` — the atomic-replace dance node_exporter's textfile
    collector expects, so a scrape never sees a torn file.
    """

    def __init__(self, registry: "MetricsRegistry", path: str) -> None:
        self.registry = registry
        self.path = path
        self.writes = 0

    def write(self) -> None:
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "w") as fileobj:
            fileobj.write(render_prometheus(self.registry))
        os.replace(tmp_path, self.path)
        self.writes += 1


class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404, "try /metrics")
            return
        # The registry mutates concurrently on the simulation thread; a
        # scrape that races a dict resize simply retries.
        for attempt in range(3):
            try:
                body = render_prometheus(self.server.registry).encode("utf-8")
                break
            except RuntimeError:
                if attempt == 2:
                    self.send_error(503, "registry busy")
                    return
        self.send_response(200)
        self.send_header("Content-Type", PROM_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        pass  # scrapes should not spam the CLI's stdout


class MetricsHttpExporter:
    """A ``/metrics`` endpoint on a daemon thread (stdlib only)."""

    def __init__(
        self, registry: "MetricsRegistry", port: int = 0, host: str = ""
    ) -> None:
        self._server = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._server.registry = registry
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return "http://127.0.0.1:%d/metrics" % self.port

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)


def start_http_exporter(
    registry: "MetricsRegistry", port: int = 0, host: str = ""
) -> MetricsHttpExporter:
    """Serve ``registry`` at ``http://host:port/metrics``; port 0 = ephemeral."""
    return MetricsHttpExporter(registry, port=port, host=host)
