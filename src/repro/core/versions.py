"""QUIC version adoption analysis (paper Table 2).

Counts each session once (same SCID, DCID, source and destination) and
buckets its version the way the paper's table does: QUICv1, Facebook
mvfst 2, draft-29, and others.  Client behaviour comes from sanitized scan
traffic, server behaviour from backscatter — which reveals the version the
two sides *agreed on*, not merely offered.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.session import SessionStore
from repro.quic.version import table2_bucket
from repro.telescope.classify import ClassifiedCapture

TABLE2_ROWS = ("QUICv1", "Facebook mvfst 2", "draft-29", "others")


@dataclass
class VersionShares:
    """Session shares per Table 2 bucket, for one side of the traffic."""

    counts: Counter
    total: int

    def share(self, bucket: str) -> float:
        if not self.total:
            return 0.0
        return 100.0 * self.counts.get(bucket, 0) / self.total

    def as_row(self) -> dict[str, float]:
        return {bucket: self.share(bucket) for bucket in TABLE2_ROWS}


def version_shares(packets) -> VersionShares:
    """Bucket one packet population (scans or backscatter) by session."""
    store = SessionStore.from_packets(packets)
    counts: Counter = Counter()
    for session in store.sessions():
        counts[table2_bucket(session.version)] += 1
    return VersionShares(counts=counts, total=len(store))


def table2(capture: ClassifiedCapture) -> dict[str, VersionShares]:
    """Client (scans) and server (backscatter) version shares."""
    return {
        "clients": version_shares(capture.scans),
        "servers": version_shares(capture.backscatter),
    }


def table2_rows(
    captures: dict[int, ClassifiedCapture],
) -> list[tuple[str, dict[int, float], dict[int, float]]]:
    """Rows of the full Table 2: (bucket, clients-by-year, servers-by-year)."""
    shares = {year: table2(capture) for year, capture in captures.items()}
    rows = []
    for bucket in TABLE2_ROWS:
        clients = {y: s["clients"].share(bucket) for y, s in shares.items()}
        servers = {y: s["servers"].share(bucket) for y, s in shares.items()}
        rows.append((bucket, clients, servers))
    return rows
