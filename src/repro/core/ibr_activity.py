"""Internet-background-radiation activity analysis.

The paper builds on the observation (QUICsand, IMC'21) that QUIC IBR
consists of scans and INITIAL-flood backscatter.  This module recovers the
*events* behind a capture: per-victim backscatter bursts (one per attack),
their duration and intensity, and the overall activity time series — the
groundwork for "will QUIC backscatter persist" style arguments (§5).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Sequence
from dataclasses import dataclass, field

from repro.telescope.classify import CapturedPacket


@dataclass
class FloodEvent:
    """One backscatter burst attributed to a single victim address."""

    victim: int
    origin: str
    start: float
    end: float
    packets: int
    #: Distinct spoofed (telescope) addresses the victim answered.
    spoofed_targets: int

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def rate(self) -> float:
        """Packets per second over the event window."""
        return self.packets / self.duration if self.duration > 0 else float(self.packets)


def activity_series(
    packets: Sequence[CapturedPacket], bin_width: float = 60.0
) -> dict[float, int]:
    """Packets per time bin — the capture's activity curve."""
    series: Counter = Counter()
    for packet in packets:
        series[round(packet.timestamp // bin_width * bin_width, 6)] += 1
    return dict(sorted(series.items()))


def detect_flood_events(
    packets: Sequence[CapturedPacket],
    quiet_gap: float = 120.0,
    min_packets: int = 10,
) -> list[FloodEvent]:
    """Split each victim's backscatter into bursts separated by quiet gaps.

    A victim (backscatter source address) that stays silent for more than
    ``quiet_gap`` seconds starts a new event; events smaller than
    ``min_packets`` are discarded as noise.
    """
    by_victim: dict[int, list[CapturedPacket]] = defaultdict(list)
    for packet in packets:
        by_victim[packet.src_ip].append(packet)

    events: list[FloodEvent] = []
    for victim, victim_packets in by_victim.items():
        victim_packets.sort(key=lambda p: p.timestamp)
        bucket: list[CapturedPacket] = []
        for packet in victim_packets:
            if bucket and packet.timestamp - bucket[-1].timestamp > quiet_gap:
                event = _close_event(victim, bucket)
                if event.packets >= min_packets:
                    events.append(event)
                bucket = []
            bucket.append(packet)
        if bucket:
            event = _close_event(victim, bucket)
            if event.packets >= min_packets:
                events.append(event)
    events.sort(key=lambda e: (e.start, e.victim))
    return events


def _close_event(victim: int, bucket: list[CapturedPacket]) -> FloodEvent:
    return FloodEvent(
        victim=victim,
        origin=bucket[0].origin,
        start=bucket[0].timestamp,
        end=bucket[-1].timestamp,
        packets=len(bucket),
        spoofed_targets=len({p.dst_ip for p in bucket}),
    )


@dataclass
class IbrSummary:
    """Aggregate view of one capture's attack landscape."""

    events: list[FloodEvent]

    @property
    def victims(self) -> int:
        return len({e.victim for e in self.events})

    def events_per_origin(self) -> Counter:
        return Counter(e.origin for e in self.events)

    def busiest(self, top: int = 5) -> list[FloodEvent]:
        return sorted(self.events, key=lambda e: e.packets, reverse=True)[:top]


def summarize_ibr(packets: Sequence[CapturedPacket], **kwargs) -> IbrSummary:
    return IbrSummary(events=detect_flood_events(packets, **kwargs))
