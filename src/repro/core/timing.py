"""Retransmission timing analysis (paper Figures 3 and 4).

Backscatter sessions contain a server's full retransmission ladder: the
spoofed "client" never answers, so the server resends its Initial/Handshake
flight until it gives up.  From the per-session arrival times we estimate

* the *initial retransmission timeout* (first resend gap: the paper finds
  1 s at Cloudflare, 0.4 s at Facebook, 0.3 s at Google),
* the backoff factor (all deployments use exponential backoff), and
* the distribution of resend counts (Figure 4), whose support reveals each
  deployment's maximum-retransmission configuration.
"""

from __future__ import annotations

import statistics
from collections import Counter, defaultdict
from typing import Sequence
from dataclasses import dataclass, field

from repro.core.session import Session, SessionStore
from repro.telescope.classify import CapturedPacket


@dataclass
class TimingProfile:
    """Estimated retransmission configuration of one origin network."""

    origin: str
    sessions: int
    initial_rto: float | None
    backoff_factor: float | None
    resend_counts: Counter = field(default_factory=Counter)

    @property
    def resend_range(self) -> tuple[int, int] | None:
        """Observed (min, max) resends among sessions that resent at all."""
        observed = [n for n in self.resend_counts.elements() if n > 0]
        if not observed:
            return None
        return (min(observed), max(observed))


def flight_times(session: Session) -> list[float]:
    """Relative arrival time of each flight (datagrams closer than 50 ms to
    the previous flight are the same flight — e.g. Initial + Handshake)."""
    times: list[float] = []
    for t in session.relative_times():
        if not times or t - times[-1] > 0.05:
            times.append(t)
    return times


def session_gaps(session: Session) -> list[float]:
    """Gaps between consecutive flights of one session."""
    times = flight_times(session)
    return [b - a for a, b in zip(times, times[1:])]


def estimate_rto(first_gaps: list[float]) -> float | None:
    """Estimate the initial RTO as the mode of binned first-resend gaps.

    Network jitter spreads the observed gaps; 50 ms bins reproduce the
    peaks visible in the paper's Figure 3.
    """
    if not first_gaps:
        return None
    bins = Counter(round(gap / 0.05) for gap in first_gaps)
    top_bin, _count = bins.most_common(1)[0]
    in_bin = [g for g in first_gaps if round(g / 0.05) == top_bin]
    return statistics.median(in_bin)


def estimate_backoff(session: Session) -> float | None:
    """Ratio between consecutive gaps (2.0 for exponential doubling)."""
    gaps = session_gaps(session)
    if len(gaps) < 2:
        return None
    ratios = [b / a for a, b in zip(gaps, gaps[1:]) if a > 0]
    return statistics.median(ratios) if ratios else None


def timing_profiles(packets: Sequence[CapturedPacket]) -> dict[str, TimingProfile]:
    """Per-origin timing profiles from classified backscatter."""
    store = SessionStore.from_packets(packets)
    by_origin: dict[str, list[Session]] = defaultdict(list)
    for session in store.sessions():
        by_origin[session.origin].append(session)

    profiles: dict[str, TimingProfile] = {}
    for origin, sessions in by_origin.items():
        first_gaps: list[float] = []
        backoffs: list[float] = []
        resend_counts: Counter = Counter()
        for session in sessions:
            gaps = session_gaps(session)
            if gaps:
                first_gaps.append(gaps[0])
            backoff = estimate_backoff(session)
            if backoff is not None:
                backoffs.append(backoff)
            resend_counts[len(flight_times(session)) - 1] += 1
        profiles[origin] = TimingProfile(
            origin=origin,
            sessions=len(sessions),
            initial_rto=estimate_rto(first_gaps),
            backoff_factor=statistics.median(backoffs) if backoffs else None,
            resend_counts=resend_counts,
        )
    return profiles


def gap_histogram(
    packets: Sequence[CapturedPacket], bin_width: float = 0.1, max_seconds: float = 60.0
) -> dict[str, Counter]:
    """Figure 3's raw series: per-origin histogram of time-since-first-SCID."""
    store = SessionStore.from_packets(packets)
    histogram: dict[str, Counter] = defaultdict(Counter)
    for session in store.sessions():
        for t in session.relative_times():
            if 0 < t <= max_seconds:
                bin_label = round(round(t / bin_width) * bin_width, 6)
                histogram[session.origin][bin_label] += 1
    return dict(histogram)


def resend_count_distribution(packets: Sequence[CapturedPacket]) -> dict[str, Counter]:
    """Figure 4's series: per-origin distribution of resent flights."""
    profiles = timing_profiles(packets)
    return {origin: profile.resend_counts for origin, profile in profiles.items()}
