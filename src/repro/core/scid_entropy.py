"""SCID nybble-frequency analysis (paper Figure 5).

If a deployment encodes information in its connection IDs, some nybble
positions stop being uniform.  The paper plots the relative frequency of
each nybble value (0-15) at each position: Google's SCIDs are flat at
1/16 everywhere, Facebook's first bytes show strong structure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

try:
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

UNIFORM = 1.0 / 16.0


@dataclass
class NybbleMatrix:
    """Relative frequency of each nybble value at each position."""

    #: ``freq[position][value]`` — positions × 16 relative frequencies.
    freq: list[list[float]]
    sample_size: int
    #: SCIDs contributing to each position (shorter IDs skip tail positions).
    position_totals: list[int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.position_totals is None:
            self.position_totals = [self.sample_size] * len(self.freq)

    @property
    def positions(self) -> int:
        return len(self.freq)

    def deviation(self) -> float:
        """Mean absolute deviation from the uniform 1/16 across all cells."""
        if not self.freq:
            return 0.0
        total = sum(
            abs(value - UNIFORM) for row in self.freq for value in row
        )
        return total / (16 * len(self.freq))

    def max_cell(self) -> float:
        return max((value for row in self.freq for value in row), default=0.0)

    def hot_positions(self, threshold: float = 0.25) -> list[int]:
        """Positions where some value occurs suspiciously often."""
        return [
            i for i, row in enumerate(self.freq) if max(row, default=0.0) >= threshold
        ]

    def entropy_per_position(self) -> list[float]:
        """Shannon entropy (bits) of each nybble position; 4.0 = random."""
        out = []
        for row in self.freq:
            h = -sum(p * math.log2(p) for p in row if p > 0)
            out.append(h)
        return out


def nybbles(scid: bytes) -> list[int]:
    """Split a connection ID into its nybble sequence (high nybble first)."""
    out = []
    for byte in scid:
        out.append(byte >> 4)
        out.append(byte & 0x0F)
    return out


def nybble_matrix(scids: set[bytes] | list[bytes]) -> NybbleMatrix:
    """Frequency matrix over a population of equal-or-mixed-length SCIDs.

    Positions beyond a shorter SCID's length simply accumulate fewer
    samples; each row is normalized by its own sample count.
    """
    scid_list = list(scids)
    if not scid_list:
        return NybbleMatrix(freq=[], sample_size=0)
    max_positions = max(len(s) for s in scid_list) * 2
    counts = [[0] * 16 for _ in range(max_positions)]
    totals = [0] * max_positions
    for scid in scid_list:
        for position, value in enumerate(nybbles(scid)):
            counts[position][value] += 1
            totals[position] += 1
    freq = [
        [c / totals[pos] if totals[pos] else 0.0 for c in counts[pos]]
        for pos in range(max_positions)
    ]
    return NybbleMatrix(
        freq=freq, sample_size=len(scid_list), position_totals=totals
    )


def is_structured(matrix: NybbleMatrix, chi_threshold: float = 60.0) -> bool:
    """Table 1's "structured SCIDs" checkmark.

    A nybble position of uniformly random IDs has a chi-square statistic
    with 15 degrees of freedom (mean 15, sd ~5.5) against the uniform
    expectation; a position encoding information (a fixed scheme byte, a
    host ID) blows far past that at any realistic sample size.  Flag the
    population as structured if *any* position exceeds ``chi_threshold``
    (~8 standard deviations above random).  Works equally for Cloudflare's
    ~170 observed SCIDs and Google's hundred-thousand.
    """
    if matrix.sample_size < 8 or not matrix.freq:
        return False
    return max(chi_square_uniformity(matrix)) > chi_threshold


def chi_square_uniformity(matrix: NybbleMatrix) -> list[float]:
    """Per-position chi-square statistic against the uniform distribution.

    With 15 degrees of freedom, values far above ~25 reject uniformity;
    returned per position so callers can locate the encoded fields.
    """
    out = []
    for position, row in enumerate(matrix.freq):
        n = matrix.position_totals[position]
        expected = n * UNIFORM
        if expected <= 0:
            out.append(0.0)
            continue
        stat = sum((p * n - expected) ** 2 / expected for p in row)
        out.append(stat)
    return out
