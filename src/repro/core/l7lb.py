"""L7 load-balancer enumeration from structured connection IDs (paper §4.3).

Facebook encodes the L7LB host ID in every SCID, so the set of distinct
host IDs seen behind a VIP *is* the set of L7LBs in that frontend cluster.
This module provides:

* host-ID extraction from SCIDs (passive or active),
* convergence curves (unique host IDs vs. handshake count — §4.3's "85%
  after 1k handshakes"),
* Jaccard clustering of VIPs into frontend clusters ("VIPs either share
  all host IDs or none"),
* passive-vs-active coverage (backscatter alone revealed 19% of host IDs).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence
from dataclasses import dataclass, field

from repro.quic.cid import mvfst
from repro.quic.packet import PacketType
from repro.telescope.classify import CapturedPacket


def host_id_of(scid: bytes) -> int | None:
    """The mvfst host ID encoded in ``scid`` (None if not structured)."""
    decoded = mvfst.try_decode(scid)
    return decoded.host_id if decoded else None


def worker_id_of(scid: bytes) -> int | None:
    decoded = mvfst.try_decode(scid)
    return decoded.worker_id if decoded else None


def host_ids_from_scids(scids) -> set[int]:
    out = set()
    for scid in scids:
        host_id = host_id_of(scid)
        if host_id is not None:
            out.add(host_id)
    return out


def passive_host_ids(
    packets: Sequence[CapturedPacket], origin: str = "Facebook"
) -> dict[int, set[int]]:
    """Per-VIP host IDs observed in backscatter from ``origin``."""
    out: dict[int, set[int]] = defaultdict(set)
    for packet in packets:
        if packet.origin != origin:
            continue
        for parsed in packet.packets:
            if parsed.packet_type in (PacketType.INITIAL, PacketType.HANDSHAKE):
                host_id = host_id_of(parsed.scid)
                if host_id is not None:
                    out[packet.src_ip].add(host_id)
    return dict(out)


@dataclass
class ConvergenceCurve:
    """Unique host IDs discovered as handshakes accumulate."""

    #: ``counts[i]`` = distinct host IDs after ``i+1`` handshakes.
    counts: list[int]

    @property
    def total(self) -> int:
        return self.counts[-1] if self.counts else 0

    def coverage_at(self, handshakes: int) -> float:
        """Fraction of the final ID set known after ``handshakes``."""
        if not self.counts or self.total == 0:
            return 0.0
        index = min(handshakes, len(self.counts)) - 1
        return self.counts[index] / self.total

    def handshakes_for_coverage(self, fraction: float) -> int | None:
        """First handshake count reaching ``fraction`` of the final set."""
        target = fraction * self.total
        for i, count in enumerate(self.counts):
            if count >= target:
                return i + 1
        return None


def convergence_curve(host_id_sequence: list[int]) -> ConvergenceCurve:
    """Build the curve from the host ID of each successive handshake."""
    seen: set[int] = set()
    counts: list[int] = []
    for host_id in host_id_sequence:
        seen.add(host_id)
        counts.append(len(seen))
    return ConvergenceCurve(counts=counts)


def jaccard(a: set, b: set) -> float:
    if not a and not b:
        return 0.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


@dataclass
class VipClustering:
    """Result of grouping VIPs by shared host IDs."""

    #: Each cluster: sorted list of VIP addresses.
    clusters: list[list[int]]
    #: Minimum Jaccard index among same-cluster VIP pairs.
    min_intra_jaccard: float
    #: Maximum Jaccard index among cross-cluster VIP pairs.
    max_inter_jaccard: float

    def size_histogram(self) -> dict[int, int]:
        """Cluster size → number of clusters (the paper's 112 × 22 shape)."""
        histogram: dict[int, int] = defaultdict(int)
        for cluster in self.clusters:
            histogram[len(cluster)] += 1
        return dict(histogram)


def cluster_vips(
    vip_host_ids: dict[int, set[int]], threshold: float = 0.5
) -> VipClustering:
    """Group VIPs whose host-ID sets overlap (connected components).

    The paper computes pairwise Jaccard indices and finds they are either
    ~1 (same frontend cluster) or 0; any ``threshold`` strictly between
    separates the two regimes.  Grouping by overlap is a union-find over
    shared host IDs, which avoids the quadratic pair scan for the common
    case; the reported min/max Jaccard statistics still come from pairs.
    """
    vips = sorted(vip_host_ids)
    parent = {vip: vip for vip in vips}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    by_host: dict[int, int] = {}
    for vip in vips:
        for host_id in vip_host_ids[vip]:
            if host_id in by_host:
                union(by_host[host_id], vip)
            else:
                by_host[host_id] = vip

    groups: dict[int, list[int]] = defaultdict(list)
    for vip in vips:
        groups[find(vip)].append(vip)
    clusters = sorted((sorted(g) for g in groups.values()), key=lambda g: g[0])

    min_intra = 1.0
    for cluster in clusters:
        for i, a in enumerate(cluster):
            for b in cluster[i + 1 :]:
                min_intra = min(min_intra, jaccard(vip_host_ids[a], vip_host_ids[b]))
    max_inter = 0.0
    representatives = [cluster[0] for cluster in clusters]
    for i, a in enumerate(representatives):
        for b in representatives[i + 1 :]:
            max_inter = max(max_inter, jaccard(vip_host_ids[a], vip_host_ids[b]))
    return VipClustering(
        clusters=clusters,
        min_intra_jaccard=min_intra if vips else 0.0,
        max_inter_jaccard=max_inter,
    )


def passive_coverage(passive_ids: set[int], active_ids: set[int]) -> float:
    """Share of actively-confirmed host IDs already visible passively."""
    if not active_ids:
        return 0.0
    return len(passive_ids & active_ids) / len(active_ids)


def workers_per_host(scids) -> dict[int, set[int]]:
    """Worker IDs observed per host ID (mvfst encodes both).

    The paper's same-instance experiment shows Facebook tracks connection
    state per host *and* worker; this view quantifies worker counts the
    same way host IDs quantify L7LBs.
    """
    out: dict[int, set[int]] = defaultdict(set)
    for scid in scids:
        decoded = mvfst.try_decode(scid)
        if decoded is not None:
            out[decoded.host_id].add(decoded.worker_id)
    return dict(out)


def worker_count_distribution(scids) -> dict[int, int]:
    """Histogram: number of observed workers -> number of hosts."""
    histogram: dict[int, int] = defaultdict(int)
    for workers in workers_per_host(scids).values():
        histogram[len(workers)] += 1
    return dict(histogram)
