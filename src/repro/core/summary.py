"""The Table 1 summary: deployment configuration matrix per hypergiant.

Pulls together every other analysis — coalescence from the packet mix,
SCID structure from the nybble matrix, RTO/retransmissions from timing,
server-chosen IDs and L7LB quantifiability from SCID semantics — into the
paper's headline table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.packet_mix import PacketMix, packet_mix
from repro.core.scid_entropy import is_structured, nybble_matrix
from repro.core.scid_stats import scids_by_origin
from repro.core.l7lb import host_ids_from_scids
from repro.core.timing import TimingProfile, timing_profiles
from repro.telescope.classify import CapturedPacket

HYPERGIANT_COLUMNS = ("Cloudflare", "Facebook", "Google")


@dataclass
class DeploymentSummary:
    """One column of Table 1."""

    origin: str
    coalescence: bool
    server_chosen_ids: bool
    structured_scids: bool
    l7_load_balancers: bool  # quantifiable via encoded host IDs
    initial_rto: float | None
    resend_range: tuple[int, int] | None

    def rto_label(self) -> str:
        return "%.1f s" % self.initial_rto if self.initial_rto is not None else "n/a"

    def resend_label(self) -> str:
        if self.resend_range is None:
            return "n/a"
        low, high = self.resend_range
        return "%d-%d" % (low, high) if low != high else str(low)


def summarize(
    backscatter: Sequence[CapturedPacket],
    echo_detected_origins: frozenset[str] = frozenset({"Google"}),
) -> dict[str, DeploymentSummary]:
    """Build Table 1 from classified backscatter.

    ``echo_detected_origins`` carries the one fact passive data cannot
    supply: which providers *echo* the client's DCID instead of choosing
    their own SCIDs.  The paper establishes this with active probes
    (:func:`repro.active.prober.detect_echo_behaviour`); pass the result in.
    """
    mix = packet_mix(backscatter)
    timings = timing_profiles(backscatter)
    scids = scids_by_origin(backscatter)

    out: dict[str, DeploymentSummary] = {}
    for origin in HYPERGIANT_COLUMNS:
        origin_scids = scids.get(origin, set())
        matrix = nybble_matrix(origin_scids)
        structured = bool(origin_scids) and is_structured(matrix)
        host_ids = host_ids_from_scids(origin_scids)
        timing: TimingProfile | None = timings.get(origin)
        out[origin] = DeploymentSummary(
            origin=origin,
            coalescence=mix.uses_coalescence(origin),
            server_chosen_ids=origin not in echo_detected_origins,
            structured_scids=structured,
            # Host IDs quantify L7LBs when the provider chooses structured
            # SCIDs *and* the decoded host-ID field visibly repeats across
            # connections (random values would almost never collide).
            l7_load_balancers=structured
            and origin not in echo_detected_origins
            and _host_ids_repeat(origin_scids, host_ids),
            initial_rto=timing.initial_rto if timing else None,
            resend_range=timing.resend_range if timing else None,
        )
    return out


def _host_ids_repeat(scids: set, host_ids: set, domain: int = 1 << 16) -> bool:
    """True if far fewer distinct host IDs appear than random IDs would.

    With ``n`` samples drawn uniformly from a 16-bit space, the expected
    number of distinct values is ``domain * (1 - (1 - 1/domain)**n)`` — for
    telescope-scale ``n`` this is ~n.  Genuine host IDs (a few hundred
    machines serving thousands of connections) fall far below that.
    """
    decodable = sum(1 for s in scids if len(s) == 8)
    if decodable < 16 or len(host_ids) < 2:
        return False
    expected = domain * (1 - (1 - 1 / domain) ** decodable)
    return len(host_ids) < 0.8 * expected
