"""The paper's primary contribution: the passive analysis toolchain.

Everything in this package consumes classified telescope captures (or
active-probe logs) and produces the statistics behind the paper's tables
and figures: version adoption, packet-type mixes, retransmission timing,
SCID structure, off-net classification, and L7LB enumeration.
"""

from repro.core.dissector import DissectError, dissect_datagram, is_quic_datagram
from repro.core.session import Session, SessionStore

__all__ = [
    "DissectError",
    "dissect_datagram",
    "is_quic_datagram",
    "Session",
    "SessionStore",
]
