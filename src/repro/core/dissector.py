"""Wireshark-equivalent QUIC dissection for sanitization.

The paper removes UDP/443 false positives "based on the packet payload
using Wireshark dissectors".  This module reimplements that decision:

* structural validation of the long header chain (form/fixed bits, a
  version from a known family, sane CID lengths, a Length field consistent
  with the datagram), and
* for client Initials, *cryptographic* validation: Initial keys are
  derivable from the DCID alone (RFC 9001 §5.2), so a dissector can attempt
  to unprotect the payload exactly like Wireshark does.

Server Initials cannot be decrypted passively (their keys derive from the
*client's* original DCID, which backscatter does not contain), so for
backscatter the structural check is the operative one — same as Wireshark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.quic.crypto.suites import (
    FastProtection,
    ProtectionError,
    Rfc9001Protection,
)
from repro.quic.packet import (
    PacketParseError,
    PacketType,
    ParsedLongHeader,
    decode_datagram,
    unprotect_packet,
)
from repro.quic.version import lookup as lookup_version

#: Families the dissector accepts as "known QUIC".
_KNOWN_FAMILIES = {"v1", "v2", "draft", "mvfst", "gquic", "reserved"}

#: Suites tried (in order) when cryptographically validating a client
#: Initial.  FastProtection first: it is the bulk-simulation default.
VALIDATION_SUITES = (FastProtection, Rfc9001Protection)


class DissectError(ValueError):
    """Raised when a UDP payload is not valid QUIC."""


@dataclass
class DissectedDatagram:
    """Dissection result for one UDP payload."""

    packets: list[ParsedLongHeader]
    #: True if a client Initial was decrypted successfully (crypto-validated).
    crypto_validated: bool = False

    @property
    def packet_types(self) -> tuple[PacketType, ...]:
        return tuple(p.packet_type for p in self.packets)

    @property
    def coalesced(self) -> bool:
        return len(self.packets) > 1


def dissect_datagram(payload: bytes, validate_crypto: bool = False) -> DissectedDatagram:
    """Dissect a UDP payload; raise :class:`DissectError` if it is not QUIC."""
    if len(payload) < 7:  # smallest conceivable long header
        raise DissectError("payload too short for a QUIC long header")
    try:
        packets = decode_datagram(payload)
    except PacketParseError as exc:
        raise DissectError(str(exc)) from exc

    for parsed, _raw in packets:
        version = lookup_version(parsed.version)
        if parsed.packet_type is PacketType.VERSION_NEGOTIATION:
            if not parsed.supported_versions:
                raise DissectError("version negotiation without versions")
            continue
        if version.family not in _KNOWN_FAMILIES:
            raise DissectError("unknown QUIC version 0x%08x" % parsed.version)
        if parsed.packet_type in (PacketType.INITIAL, PacketType.HANDSHAKE):
            # The protected payload must hold a packet number sample and tag.
            if parsed.payload_length < 1 + 4 + 16:
                raise DissectError("protected payload implausibly short")

    crypto_ok = False
    if validate_crypto:
        crypto_ok = _validate_client_initial(packets)
        if not crypto_ok:
            raise DissectError("Initial payload fails AEAD validation")
    return DissectedDatagram(
        packets=[p for p, _raw in packets], crypto_validated=crypto_ok
    )


def _validate_client_initial(packets) -> bool:
    """Try to unprotect the first client Initial with the known suites.

    Datagrams without an Initial (e.g. replayed 0-RTT) cannot be validated
    cryptographically — their keys are not derivable — so they pass on the
    structural checks alone, as in Wireshark.
    """
    for parsed, raw in packets:
        if parsed.packet_type is not PacketType.INITIAL:
            continue
        for suite_cls in VALIDATION_SUITES:
            try:
                suite = suite_cls(parsed.version, parsed.dcid)
                unprotect_packet(parsed, raw, suite, from_server=False)
                return True
            except (ProtectionError, PacketParseError):
                continue
        return False
    return True


def is_quic_datagram(payload: bytes, validate_crypto: bool = False) -> bool:
    """Boolean form of :func:`dissect_datagram`."""
    try:
        dissect_datagram(payload, validate_crypto=validate_crypto)
        return True
    except DissectError:
        return False
