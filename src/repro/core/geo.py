"""Geographic aggregation of frontend clusters (paper Figure 6).

Given per-cluster L7LB counts (from host-ID enumeration) and a geolocation
database, compute the per-country distributions and per-continent medians
the paper plots — its headline: Facebook provisions markedly more L7LBs
per cluster in Asia than in Europe or North America.
"""

from __future__ import annotations

import statistics
from collections import defaultdict
from dataclasses import dataclass

from repro.inetdata.geodb import GeoDatabase


@dataclass
class BoxStats:
    """Five-number summary for one country's cluster sizes."""

    country: str
    count: int
    minimum: int
    q1: float
    median: float
    q3: float
    maximum: int

    @classmethod
    def from_values(cls, country: str, values: list[int]) -> "BoxStats":
        ordered = sorted(values)
        return cls(
            country=country,
            count=len(ordered),
            minimum=ordered[0],
            q1=_quantile(ordered, 0.25),
            median=_quantile(ordered, 0.5),
            q3=_quantile(ordered, 0.75),
            maximum=ordered[-1],
        )


def _quantile(ordered: list[int], q: float) -> float:
    if not ordered:
        raise ValueError("empty sample")
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


@dataclass
class GeoAggregation:
    """Figure 6's data: cluster sizes grouped by country and continent."""

    by_country: dict[str, list[int]]
    by_continent: dict[str, list[int]]

    def country_boxes(self) -> list[BoxStats]:
        return [
            BoxStats.from_values(country, values)
            for country, values in sorted(self.by_country.items())
        ]

    def continent_medians(self) -> dict[str, float]:
        return {
            continent: statistics.median(values)
            for continent, values in self.by_continent.items()
            if values
        }

    def clusters_per_continent(self) -> dict[str, int]:
        return {
            continent: len(values) for continent, values in self.by_continent.items()
        }


def aggregate_clusters(
    cluster_sizes: dict[int, int], geodb: GeoDatabase
) -> GeoAggregation:
    """Group ``{representative VIP -> L7LB count}`` by geolocation."""
    by_country: dict[str, list[int]] = defaultdict(list)
    by_continent: dict[str, list[int]] = defaultdict(list)
    for vip, size in cluster_sizes.items():
        country = geodb.country(vip)
        continent = geodb.continent(vip)
        if country is None or continent is None:
            continue
        by_country[country].append(size)
        by_continent[continent].append(size)
    return GeoAggregation(by_country=dict(by_country), by_continent=dict(by_continent))
