"""SCID length statistics per origin AS (paper Table 4)."""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Sequence
from dataclasses import dataclass

from repro.quic.packet import PacketType
from repro.telescope.classify import CapturedPacket


@dataclass
class ScidStats:
    """SCID observations for one origin network."""

    origin: str
    unique_scids: set[bytes]

    @property
    def unique_count(self) -> int:
        return len(self.unique_scids)

    @property
    def length_counts(self) -> Counter:
        return Counter(len(s) for s in self.unique_scids)

    @property
    def dominant_length(self) -> int | None:
        counts = self.length_counts
        return counts.most_common(1)[0][0] if counts else None

    def length_summary(self) -> str:
        """Paper-style cell: dominant length, rare others in parentheses."""
        counts = self.length_counts
        if not counts:
            return "-"
        dominant, _n = counts.most_common(1)[0]
        others = sorted(l for l in counts if l != dominant)
        if not others:
            return str(dominant)
        return "%d (%s)" % (dominant, ", ".join(str(l) for l in others))


def scids_by_origin(packets: Sequence[CapturedPacket]) -> dict[str, set[bytes]]:
    """Unique server connection IDs per origin, from backscatter."""
    out: dict[str, set[bytes]] = defaultdict(set)
    for packet in packets:
        for parsed in packet.packets:
            if parsed.packet_type in (
                PacketType.INITIAL,
                PacketType.HANDSHAKE,
                PacketType.RETRY,
            ):
                if parsed.scid:
                    out[packet.origin].add(parsed.scid)
    return dict(out)


def table4(packets: Sequence[CapturedPacket]) -> dict[str, ScidStats]:
    return {
        origin: ScidStats(origin=origin, unique_scids=scids)
        for origin, scids in scids_by_origin(packets).items()
    }
