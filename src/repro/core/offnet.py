"""Off-net deployment detection from backscatter (paper §4.2, Table 6).

For every backscatter-emitting server in a *non-hypergiant* AS we build a
feature vector — SCID structure, retransmission inter-arrival time,
coalescence, packet lengths — and test Facebook-likeness with the nine
feature combinations of the paper's Table 6.  Ground truth comes from the
certificate store (subjectAltName suffix match), mirroring the paper's
QScanner verification.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence
from dataclasses import dataclass, field

from repro.core.session import SessionStore
from repro.core.timing import session_gaps
from repro.inetdata.certs import CertificateStore
from repro.inetdata.hypergiants import FACEBOOK, Hypergiant
from repro.quic.cid import mvfst
from repro.telescope.classify import CapturedPacket

#: Facebook's characteristic first-resend gap and tolerance (seconds).
FACEBOOK_RTO = 0.4
RTO_TOLERANCE = 0.07

#: Facebook's characteristic datagram lengths (profile padding targets).
FACEBOOK_LENGTHS = frozenset({1200, 1232})

#: The improved predictor: off-net caches use low host IDs — the paper
#: keys on the first 9 bits of the 16-bit host ID being zero.
LOW_HOST_ID_LIMIT = 1 << 7


@dataclass
class ServerFeatures:
    """Passive observables of one backscatter-emitting server IP."""

    address: int
    origin: str
    scids: set[bytes] = field(default_factory=set)
    first_gaps: list[float] = field(default_factory=list)
    coalesced_seen: bool = False
    datagram_lengths: set[int] = field(default_factory=set)

    # -- individual features (paper Appendix C) -----------------------------
    def scid_structured_like_facebook(self) -> bool:
        """All SCIDs are 8 bytes and parse as mvfst v1 structured IDs."""
        if not self.scids:
            return False
        for scid in self.scids:
            decoded = mvfst.try_decode(scid)
            if decoded is None or decoded.version != 1:
                return False
        return True

    def low_host_id(self) -> bool:
        """SCIDs parse as mvfst v1 *and* every host ID is low."""
        if not self.scid_structured_like_facebook():
            return False
        return all(
            mvfst.decode(scid).host_id < LOW_HOST_ID_LIMIT for scid in self.scids
        )

    def inter_arrival_like_facebook(self) -> bool:
        """Median first-resend gap within tolerance of Facebook's 0.4 s."""
        if not self.first_gaps:
            return False
        ordered = sorted(self.first_gaps)
        median = ordered[len(ordered) // 2]
        return abs(median - FACEBOOK_RTO) <= RTO_TOLERANCE

    def coalescence_like_facebook(self) -> bool:
        """Facebook never coalesces; feature = no coalescence observed."""
        return not self.coalesced_seen

    def lengths_like_facebook(self) -> bool:
        """All observed datagram lengths within Facebook's fingerprint set."""
        return bool(self.datagram_lengths) and self.datagram_lengths <= FACEBOOK_LENGTHS


#: Table 6 rows: name → predicate combination over ServerFeatures.
CLASSIFIERS = {
    "Inter arrival time": lambda f: f.inter_arrival_like_facebook(),
    "SCID & Inter arrival time": lambda f: f.scid_structured_like_facebook()
    and f.inter_arrival_like_facebook(),
    "SCID & coalescence & Inter arrival time": lambda f: (
        f.scid_structured_like_facebook()
        and f.coalescence_like_facebook()
        and f.inter_arrival_like_facebook()
    ),
    "QUIC packet length": lambda f: f.lengths_like_facebook(),
    "SCID & coalescence & QUIC packet length": lambda f: (
        f.scid_structured_like_facebook()
        and f.coalescence_like_facebook()
        and f.lengths_like_facebook()
    ),
    "Coalescence": lambda f: f.coalescence_like_facebook(),
    "SCID": lambda f: f.scid_structured_like_facebook(),
    "SCID & coalescence": lambda f: f.scid_structured_like_facebook()
    and f.coalescence_like_facebook(),
    "SCID off-net (low host ID)": lambda f: f.low_host_id(),
}


@dataclass
class ClassifierMetrics:
    """The six columns of Table 6."""

    name: str
    tp: int
    fp: int
    tn: int
    fn: int

    @staticmethod
    def _ratio(num: int, den: int) -> float:
        return num / den if den else 0.0

    @property
    def tpr(self) -> float:
        return self._ratio(self.tp, self.tp + self.fn)

    @property
    def fpr(self) -> float:
        return self._ratio(self.fp, self.fp + self.tn)

    @property
    def tnr(self) -> float:
        return self._ratio(self.tn, self.tn + self.fp)

    @property
    def fnr(self) -> float:
        return self._ratio(self.fn, self.fn + self.tp)

    @property
    def precision(self) -> float:
        return self._ratio(self.tp, self.tp + self.fp)

    @property
    def recall(self) -> float:
        return self.tpr


def extract_features(
    packets: Sequence[CapturedPacket],
    exclude_origins: tuple[str, ...] = ("Facebook", "Google", "Cloudflare"),
) -> dict[int, ServerFeatures]:
    """Per-server features from backscatter outside hypergiant ASes."""
    from repro.quic.packet import PacketType

    features: dict[int, ServerFeatures] = {}
    store = SessionStore.from_packets(packets)
    for packet in packets:
        if packet.origin in exclude_origins:
            continue
        if packet.packets[0].packet_type is PacketType.VERSION_NEGOTIATION:
            # VN SCIDs echo the *client's* DCID — they say nothing about the
            # server's CID scheme, so they must not pollute the features.
            continue
        record = features.get(packet.src_ip)
        if record is None:
            record = ServerFeatures(address=packet.src_ip, origin=packet.origin)
            features[packet.src_ip] = record
        for parsed in packet.packets:
            if parsed.scid:
                record.scids.add(parsed.scid)
        if packet.coalesced:
            record.coalesced_seen = True
        record.datagram_lengths.add(packet.udp_payload_length)
    for session in store.sessions():
        if session.origin in exclude_origins:
            continue
        record = features.get(session.src_ip)
        if record is None:
            continue
        gaps = session_gaps(session)
        if gaps:
            record.first_gaps.append(gaps[0])
    return features


def evaluate_classifiers(
    features: dict[int, ServerFeatures],
    certstore: CertificateStore,
    hypergiant: Hypergiant = FACEBOOK,
) -> list[ClassifierMetrics]:
    """Score every Table 6 classifier against certificate ground truth.

    Servers without a certificate do not admit verification (like the
    paper's Cloudflare candidates) and are excluded from scoring.
    """
    verifiable = {
        addr: f for addr, f in features.items() if addr in certstore
    }
    results = []
    for name, predicate in CLASSIFIERS.items():
        tp = fp = tn = fn = 0
        for addr, feats in verifiable.items():
            truth = certstore.operated_by(addr, hypergiant)
            predicted = predicate(feats)
            if truth and predicted:
                tp += 1
            elif truth:
                fn += 1
            elif predicted:
                fp += 1
            else:
                tn += 1
        results.append(ClassifierMetrics(name=name, tp=tp, fp=fp, tn=tn, fn=fn))
    return results
