"""Plain-text table rendering for benches, examples, and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_cell(value) -> str:
    if isinstance(value, float):
        return "%.3f" % value
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Every row must have exactly one cell per header; a ragged row raises
    ``ValueError`` instead of silently misaligning columns.
    """
    formatted = [[format_cell(v) for v in row] for row in rows]
    for index, row in enumerate(formatted):
        if len(row) != len(headers):
            raise ValueError(
                "row %d has %d cells, expected %d (headers: %r)"
                % (index, len(row), len(headers), list(headers))
            )
    widths = [len(h) for h in headers]
    for row in formatted:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in formatted)
    return "\n".join(out)


def render_histogram(
    pairs: Iterable[tuple], width: int = 40, title: str = ""
) -> str:
    """Render (label, count) pairs as a horizontal ASCII bar chart."""
    pairs = list(pairs)
    if not pairs:
        return title + "\n(empty)" if title else "(empty)"
    peak = max(count for _label, count in pairs) or 1
    label_width = max(len(str(label)) for label, _count in pairs)
    out = [title] if title else []
    for label, count in pairs:
        bar = "#" * max(1 if count else 0, round(width * count / peak))
        out.append("%s  %6d  %s" % (str(label).rjust(label_width), count, bar))
    return "\n".join(out)
