"""Packet-type mix and packet-length patterns (paper Table 3 and Figure 7).

Table 3 classifies every long-header datagram from each source network:
Initial, Handshake, 0-RTT, Retry, or a coalesced Initial & Handshake
datagram.  Figure 7 looks at the lengths of the QUIC packets inside each
datagram — comma-joined when coalesced — whose per-provider patterns stem
from distinct padding policies.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Sequence
from dataclasses import dataclass, field

from repro.quic.packet import PacketType
from repro.telescope.classify import CapturedPacket

TABLE3_ROWS = (
    "Initial",
    "Handshake",
    "0-RTT",
    "Retry",
    "Coalesced Initial & Handshake",
)


def datagram_category(packet: CapturedPacket) -> str:
    """The Table 3 row a captured datagram falls into."""
    types = [p.packet_type for p in packet.packets]
    if len(types) > 1:
        kinds = set(types)
        if kinds <= {PacketType.INITIAL, PacketType.HANDSHAKE}:
            return "Coalesced Initial & Handshake"
        return "Coalesced other"
    only = types[0]
    if only is PacketType.INITIAL:
        return "Initial"
    if only is PacketType.HANDSHAKE:
        return "Handshake"
    if only is PacketType.ZERO_RTT:
        return "0-RTT"
    if only is PacketType.RETRY:
        return "Retry"
    if only is PacketType.VERSION_NEGOTIATION:
        return "Version Negotiation"
    return "1-RTT"


@dataclass
class PacketMix:
    """Per-origin datagram category shares."""

    counts: dict[str, Counter] = field(default_factory=dict)

    def origins(self) -> list[str]:
        return sorted(self.counts)

    def share(self, origin: str, category: str) -> float:
        counter = self.counts.get(origin)
        if not counter:
            return 0.0
        total = sum(counter.values())
        return 100.0 * counter.get(category, 0) / total if total else 0.0

    def coalescence_share(self, origin: str) -> float:
        return self.share(origin, "Coalesced Initial & Handshake")

    def uses_coalescence(self, origin: str, threshold: float = 1.0) -> bool:
        """Table 1's coalescence checkmark: more than ``threshold`` percent."""
        return self.coalescence_share(origin) > threshold


def packet_mix(packets: Sequence[CapturedPacket]) -> PacketMix:
    """Compute Table 3 from classified backscatter."""
    counts: dict[str, Counter] = defaultdict(Counter)
    for packet in packets:
        category = datagram_category(packet)
        if category == "Version Negotiation":
            continue  # the paper's table covers the four flight types
        counts[packet.origin][category] += 1
    return PacketMix(counts=dict(counts))


def length_signature(packet: CapturedPacket) -> str:
    """Figure 7 label: comma-joined QUIC packet lengths inside the datagram."""
    return ",".join(str(p.packet_length) for p in packet.packets)


def top_length_signatures(
    packets: Sequence[CapturedPacket], top: int = 7
) -> dict[str, list[tuple[str, int]]]:
    """Per-origin top-N packet-length combinations (Figure 7)."""
    per_origin: dict[str, Counter] = defaultdict(Counter)
    for packet in packets:
        if packet.packets[0].packet_type is PacketType.VERSION_NEGOTIATION:
            continue
        per_origin[packet.origin][length_signature(packet)] += 1
    return {
        origin: counter.most_common(top) for origin, counter in per_origin.items()
    }
