"""Session reconstruction from classified telescope packets.

The paper counts "QUIC sessions (i.e., same SCID, DCID, source and
destination IP address) once" (Table 2) and measures per-connection
retransmission timing by grouping backscatter on the SCID (Figure 3).
:class:`SessionStore` builds exactly that grouping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # imported lazily to avoid a telescope<->core import cycle
    from repro.telescope.classify import CapturedPacket


@dataclass
class Session:
    """All telescope datagrams belonging to one QUIC connection."""

    src_ip: int
    dst_ip: int
    scid: bytes
    dcid: bytes
    origin: str
    version: int
    #: Datagram arrival timestamps, in observation order.
    timestamps: list[float] = field(default_factory=list)
    #: Long-header packet-type labels per datagram (tuple per datagram).
    datagram_types: list[tuple[str, ...]] = field(default_factory=list)
    #: UDP payload length per datagram.
    datagram_lengths: list[int] = field(default_factory=list)

    @property
    def first_seen(self) -> float:
        return self.timestamps[0]

    @property
    def datagram_count(self) -> int:
        return len(self.timestamps)

    def relative_times(self) -> list[float]:
        """Arrival times relative to the first datagram of the session."""
        first = self.first_seen
        return [t - first for t in self.timestamps]

    def resend_count(self) -> int:
        """Number of *resent* flights: flights observed after the first.

        A flight is one Initial (+Handshake) response; non-coalescing
        stacks emit two datagrams per flight, coalescing stacks one.  We
        count flights by Initial packets (every flight leads with one).
        """
        initials = sum(
            1 for types in self.datagram_types if "Initial" in types
        )
        return max(0, initials - 1)


class SessionStore:
    """Groups captured packets into sessions."""

    def __init__(self) -> None:
        self._sessions: dict[tuple, Session] = {}

    @staticmethod
    def key_of(packet: CapturedPacket) -> tuple:
        first = packet.packets[0]
        return (packet.src_ip, packet.dst_ip, first.scid, first.dcid)

    def add(self, packet: CapturedPacket) -> Session:
        key = self.key_of(packet)
        session = self._sessions.get(key)
        first = packet.packets[0]
        if session is None:
            session = Session(
                src_ip=packet.src_ip,
                dst_ip=packet.dst_ip,
                scid=first.scid,
                dcid=first.dcid,
                origin=packet.origin,
                version=first.version,
            )
            self._sessions[key] = session
        session.timestamps.append(packet.timestamp)
        session.datagram_types.append(
            tuple(p.packet_type.label for p in packet.packets)
        )
        session.datagram_lengths.append(packet.udp_payload_length)
        return session

    @classmethod
    def from_packets(cls, packets: Iterable[CapturedPacket]) -> "SessionStore":
        """Group packets into sessions.

        Accepts any iterable of CapturedPacket-shaped rows — including
        :class:`repro.capstore.CapturedRowView` adapters, whose cached
        ``packets`` materialization keeps the repeated ``key_of`` /
        ``add`` accesses cheap.
        """
        store = cls()
        for packet in packets:
            store.add(packet)
        return store

    def sessions(self) -> list[Session]:
        return list(self._sessions.values())

    def by_origin(self, origin: str) -> list[Session]:
        return [s for s in self._sessions.values() if s.origin == origin]

    def __len__(self) -> int:
        return len(self._sessions)
