"""Cloudflare colo fingerprinting — an extension of the paper's §4.2.

The paper establishes that Cloudflare's 20-byte SCIDs carry structure but
stops at the fixed first byte.  Under this library's documented model
(bytes 1-2 = colo ID, byte 3 = metal ID), the same passive data also
quantifies Cloudflare *points of presence* and per-colo server counts —
the Cloudflare analogue of the Facebook L7LB enumeration.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence
from dataclasses import dataclass

from repro.quic.cid.cloudflare import decode_colo_id, looks_like_cloudflare
from repro.telescope.classify import CapturedPacket


@dataclass
class ColoView:
    """Passively observed Cloudflare colo structure."""

    #: colo ID → metal (server) IDs observed.
    metals_by_colo: dict[int, set[int]]

    @property
    def colo_count(self) -> int:
        return len(self.metals_by_colo)

    def metal_counts(self) -> dict[int, int]:
        return {colo: len(metals) for colo, metals in self.metals_by_colo.items()}


def cloudflare_colos(
    packets: Sequence[CapturedPacket], origin: str = "Cloudflare"
) -> ColoView:
    """Extract colo/metal structure from Cloudflare backscatter SCIDs."""
    metals: dict[int, set[int]] = defaultdict(set)
    for packet in packets:
        if packet.origin != origin:
            continue
        for parsed in packet.packets:
            if looks_like_cloudflare(parsed.scid):
                metals[decode_colo_id(parsed.scid)].add(parsed.scid[3])
    return ColoView(metals_by_colo=dict(metals))
