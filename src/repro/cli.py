"""Command-line interface: ``python -m repro <command>``.

Four commands cover the toolchain end to end:

* ``simulate`` — build a telescope measurement month and write the capture
  to a standard pcap file;
* ``classify`` — run the sanitization pipeline over a pcap and print what
  was kept and removed;
* ``analyze``  — reproduce the paper's tables from a pcap;
* ``probe``    — run the active-measurement experiments against a
  simulated deployment (host-ID enumeration, LB-type inference,
  migration survival).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.packet_mix import TABLE3_ROWS, packet_mix, top_length_signatures
from repro.core.report import render_histogram, render_table
from repro.core.scid_stats import table4
from repro.core.summary import HYPERGIANT_COLUMNS, summarize
from repro.core.timing import timing_profiles
from repro.core.versions import TABLE2_ROWS, table2
from repro.inetdata.asdb import AsDatabase, AsEntry
from repro.netstack.pcap import read_pcap
from repro.telescope.acknowledged import AcknowledgedScanners
from repro.telescope.classify import ClassifiedCapture, classify_capture
from repro.workloads.scenario import (
    RESEARCH_NETWORKS,
    ScenarioConfig,
    april_2021_config,
    build_scenario,
)

ORIGINS = ("Cloudflare", "Facebook", "Google", "Remaining")


def _default_asdb() -> AsDatabase:
    from repro.workloads.scenario import ISP_NETWORKS

    asdb = AsDatabase.with_hypergiants()
    for asn, name, prefix in ISP_NETWORKS:
        asdb.register(prefix, AsEntry(asn, name, category="isp"))
    return asdb


def _default_acknowledged() -> AcknowledgedScanners:
    scanners = AcknowledgedScanners()
    for prefix, name in RESEARCH_NETWORKS:
        scanners.register(prefix, name)
    return scanners


def _load_capture(path: str) -> ClassifiedCapture:
    records = read_pcap(path)
    return classify_capture(
        records, asdb=_default_asdb(), acknowledged=_default_acknowledged()
    )


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def cmd_simulate(args: argparse.Namespace) -> int:
    config = (
        april_2021_config(seed=args.seed)
        if args.year == 2021
        else ScenarioConfig(seed=args.seed)
    )
    config = config.scaled(args.scale)
    print("Simulating %d (scale %.2f, seed %d)…" % (args.year, args.scale, args.seed))
    scenario = build_scenario(config)
    scenario.run()
    with open(args.output, "wb") as fileobj:
        scenario.telescope.write_pcap(fileobj)
    print(
        "Wrote %d captured packets to %s"
        % (len(scenario.telescope.records), args.output)
    )
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    capture = _load_capture(args.pcap)
    stats = capture.stats
    print(
        render_table(
            ["stage", "packets"],
            [
                ["raw records", stats.total_records],
                ["non-UDP", stats.non_udp],
                ["non-443", stats.non_port_443],
                ["failed dissection", stats.failed_dissection],
                ["acknowledged scanners", stats.acknowledged_scanner],
                ["backscatter kept", stats.backscatter],
                ["scans kept", stats.scans],
            ],
            title="Sanitization of %s (removed %.0f%%)"
            % (args.pcap, 100 * stats.removed_share),
        )
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    capture = _load_capture(args.pcap)
    wanted = set(args.tables) if args.tables else {"1", "2", "3", "4"}

    if "1" in wanted:
        summary = summarize(capture.backscatter)
        print(
            render_table(
                ["Feature"] + list(HYPERGIANT_COLUMNS),
                [
                    ["Coalescence"]
                    + [summary[h].coalescence for h in HYPERGIANT_COLUMNS],
                    ["Server-chosen IDs"]
                    + [summary[h].server_chosen_ids for h in HYPERGIANT_COLUMNS],
                    ["Structured SCIDs"]
                    + [summary[h].structured_scids for h in HYPERGIANT_COLUMNS],
                    ["Initial RTO"]
                    + [summary[h].rto_label() for h in HYPERGIANT_COLUMNS],
                    ["# re-transmissions"]
                    + [summary[h].resend_label() for h in HYPERGIANT_COLUMNS],
                ],
                title="Table 1 — deployment configurations",
            )
        )
        print()
    if "2" in wanted:
        shares = table2(capture)
        print(
            render_table(
                ["QUIC version", "Clients [%]", "Servers [%]"],
                [
                    [
                        bucket,
                        "%.1f" % shares["clients"].share(bucket),
                        "%.1f" % shares["servers"].share(bucket),
                    ]
                    for bucket in TABLE2_ROWS
                ],
                title="Table 2 — version adoption",
            )
        )
        print()
    if "3" in wanted:
        mix = packet_mix(capture.backscatter + capture.scans)
        print(
            render_table(
                ["Packet type"] + list(ORIGINS),
                [
                    [cat] + ["%.2f" % mix.share(o, cat) for o in ORIGINS]
                    for cat in TABLE3_ROWS
                ],
                title="Table 3 — packet types per source network [%]",
            )
        )
        print()
    if "4" in wanted:
        stats = table4(capture.backscatter)
        print(
            render_table(
                ["Origin AS", "SCID length", "Unique SCIDs"],
                [
                    [o, stats[o].length_summary(), stats[o].unique_count]
                    for o in ORIGINS
                    if o in stats
                ],
                title="Table 4 — SCID statistics",
            )
        )
        print()
    if "rto" in wanted:
        profiles = timing_profiles(capture.backscatter)
        print(
            render_table(
                ["Origin", "sessions", "initial RTO [s]", "resends"],
                [
                    [
                        o,
                        profiles[o].sessions,
                        "%.2f" % (profiles[o].initial_rto or 0),
                        str(profiles[o].resend_range),
                    ]
                    for o in ORIGINS
                    if o in profiles
                ],
                title="Figure 3/4 — retransmission behaviour",
            )
        )
        print()
    if "lengths" in wanted:
        for origin, entries in top_length_signatures(capture.backscatter).items():
            print(render_histogram(entries, width=30, title=origin))
            print()
    return 0


def cmd_probe(args: argparse.Namespace) -> int:
    from repro.active.lb_inference import classify_lb, follow_up_delay
    from repro.active.migration import migration_probe
    from repro.active.prober import Prober
    from repro.core.l7lb import convergence_curve
    from repro.workloads.scenario import build_lb_lab

    lab = build_lb_lab(
        google_hosts=args.hosts,
        facebook_hosts=args.hosts,
        quic_lb_hosts=args.hosts,
        seed=args.seed,
    )
    prober = Prober(lab.loop, lab.network)
    if args.experiment == "enumerate":
        vip = lab.vips("Facebook")[0]
        ids = prober.enumerate_host_ids(vip, args.handshakes)
        curve = convergence_curve([h for h in ids if h is not None])
        print(
            "Enumerated %d L7LBs behind one VIP in %d handshakes"
            % (curve.total, len(ids))
        )
        for checkpoint in (50, 100, 200, len(ids)):
            if checkpoint <= len(ids):
                print(
                    "  after %5d handshakes: %5.1f%% of host IDs"
                    % (checkpoint, 100 * curve.coverage_at(checkpoint))
                )
    elif args.experiment == "lb-type":
        for name in ("Facebook", "Google"):
            outcome = follow_up_delay(prober, lab.vips(name)[0], max_wait=400.0)
            print(
                "%-9s follow-up succeeded after %6.1f s -> %s"
                % (name, outcome.delay, classify_lb(outcome))
            )
    elif args.experiment == "migration":
        for name in ("Facebook", "Google", "QuicLB"):
            same = migration_probe(prober, lab.vips(name)[0])
            rotated = migration_probe(prober, lab.vips(name)[1], rotate_cid=True)
            print(
                "%-9s same-CID migration: %-9s rotated-CID: %s"
                % (
                    name,
                    "survived" if same.survived else "broken",
                    "survived" if rotated.survived else "broken",
                )
            )
    return 0


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Passive measurement toolchain for QUIC deployments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="simulate a month, write pcap")
    simulate.add_argument("output", help="pcap file to write")
    simulate.add_argument("--year", type=int, choices=(2021, 2022), default=2022)
    simulate.add_argument("--scale", type=float, default=0.25)
    simulate.add_argument("--seed", type=int, default=20220101)
    simulate.set_defaults(func=cmd_simulate)

    classify = sub.add_parser("classify", help="sanitize a pcap, print stats")
    classify.add_argument("pcap")
    classify.set_defaults(func=cmd_classify)

    analyze = sub.add_parser("analyze", help="reproduce tables from a pcap")
    analyze.add_argument("pcap")
    analyze.add_argument(
        "--tables",
        nargs="*",
        choices=("1", "2", "3", "4", "rto", "lengths"),
        help="which outputs to print (default: 1 2 3 4)",
    )
    analyze.set_defaults(func=cmd_analyze)

    probe = sub.add_parser("probe", help="run active experiments against a lab")
    probe.add_argument(
        "experiment", choices=("enumerate", "lb-type", "migration")
    )
    probe.add_argument("--hosts", type=int, default=12)
    probe.add_argument("--handshakes", type=int, default=500)
    probe.add_argument("--seed", type=int, default=7)
    probe.set_defaults(func=cmd_probe)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
