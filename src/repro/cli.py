"""Command-line interface: ``python -m repro <command>``.

The commands cover the toolchain end to end:

* ``simulate`` — build a telescope measurement month and write the capture
  to a standard pcap file;
* ``classify`` — run the sanitization pipeline over a pcap and print what
  was kept and removed (``--json`` for machine-readable stats);
* ``analyze``  — reproduce the paper's tables from a pcap;
* ``index``    — prebuild or inspect the ``.capidx`` columnar index that
  ``classify``/``analyze`` cache their dissection results in;
* ``probe``    — run the active-measurement experiments against a
  simulated deployment (host-ID enumeration, LB-type inference,
  migration survival);
* ``stats``    — pretty-print a metrics snapshot written by ``--metrics``,
  diff two snapshots (``--diff A.json B.json``), or follow a snapshot
  file as it is rewritten (``--follow SECONDS``);
* ``trace``    — inspect JSONL traces (``trace summarize`` prints
  per-category counts and top event names; ``trace merge`` k-way-merges
  per-worker span streams into one canonical timeline; ``trace tail``
  follows a growing trace like ``tail -f``);
* ``live``     — follow a *growing* capture (single pcap or a
  ``--no-merge`` shard set): poll the file, dissect only newly completed
  records, refresh an online-analysis dashboard, publish ``stream.*``
  Prometheus gauges, and print the batch-identical analysis once the
  capture stops growing;
* ``progress`` / ``top`` — render (or live-follow) the heartbeat files a
  running sharded simulate/index/sweep writes next to its output;
* ``sweep``    — deterministic parameter-grid experiments (``sweep run
  <spec>`` expands a declarative JSON/TOML grid into cells, simulates
  each at most once behind per-cell ``.capidx`` caching, and writes
  heatmap-ready long-form CSV/JSON; ``sweep status`` shows per-cell
  state; ``sweep render`` draws a terminal heatmap over two axes);
* ``lint``     — static determinism/invariant analysis over Python
  sources (``repro lint src``): seeded-randomness, wall-clock,
  entropy, ``hash()``, unordered-iteration, metric-name-grammar, and
  multiprocessing-picklability rules, with inline pragma suppression
  and a committed baseline (``--rules`` lists the pack).

``classify``/``analyze``/``index`` share the columnar analysis plane
(``repro.capstore``): one streaming dissection pass — parallelizable with
``--workers N`` — builds a ``.capidx`` sidecar next to the pcap, and
subsequent runs load columns straight from disk (``--no-cache`` opts out).
``analyze``/``index`` also accept multiple pcaps (the per-worker shard
files a ``simulate --workers N --no-merge`` run leaves behind) and stream
them through ``build_from_shards`` without a merge step.

``simulate``/``classify``/``analyze``/``probe`` all accept ``--trace
FILE.qlog.jsonl`` (structured event stream, one JSON object per line) and
``--metrics FILE.json`` (counter/gauge/histogram/timer snapshot), plus the
cheap always-on sinks ``--trace-sample N`` (deterministic per-type
sampling) and ``--trace-ring K`` (in-memory flight recorder), plus
``--profile`` (hierarchical span profiler; ``--speedscope FILE`` exports
a flamegraph).  ``simulate``/``probe`` additionally publish live
Prometheus metrics via ``--prom-file`` (textfile collector) and
``--prom-port`` (/metrics HTTP endpoint).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time as _wall

from repro.capstore import (
    fingerprint_matches,
    load_or_build,
    read_header,
    sidecar_path,
)
from repro.capstore.build import default_acknowledged, default_asdb
from repro.core.packet_mix import TABLE3_ROWS, packet_mix, top_length_signatures
from repro.core.report import render_histogram, render_table
from repro.core.scid_stats import table4
from repro.core.summary import HYPERGIANT_COLUMNS, summarize
from repro.core.timing import timing_profiles
from repro.core.versions import TABLE2_ROWS, table2
from repro.obs import (
    JsonlTracer,
    MetricsRegistry,
    Observability,
    Profiler,
    PromFileWriter,
    RingBufferTracer,
    SamplingTracer,
    install_signal_dump,
    load_snapshot,
    merge_span_timelines,
    start_http_exporter,
)
from repro.obs.progress import (
    HeartbeatWriter,
    aggregate,
    clean_progress_dir,
    expected_events,
    read_heartbeats,
    render_progress,
    resolve_progress_dir,
)
from repro.obs.trace import read_trace
from repro.workloads.scenario import (
    ScenarioConfig,
    april_2021_config,
    build_scenario,
)

ORIGINS = ("Cloudflare", "Facebook", "Google", "Remaining")

#: Table selectors understood by ``repro analyze --tables``.
VALID_TABLES = ("1", "2", "3", "4", "rto", "lengths")


# ---------------------------------------------------------------------------
# Observability plumbing
# ---------------------------------------------------------------------------


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a qlog-style JSONL event trace to FILE",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=0,
        metavar="N",
        help="keep every Nth event per type (rare lifecycle/security events "
        "always kept); deterministic, cheap enough to leave on",
    )
    parser.add_argument(
        "--trace-ring",
        type=int,
        default=0,
        metavar="K",
        help="flight-recorder mode: keep the last K events in memory and "
        "dump them to the --trace file on exit (or crash)",
    )
    parser.add_argument(
        "--trace-ring-signal",
        action="store_true",
        help="with --trace-ring: also dump the ring to the --trace file on "
        "SIGUSR1, so long runs can be inspected mid-flight (no-op on "
        "platforms without SIGUSR1)",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write a metrics snapshot (counters/histograms/timers) to FILE",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attribute wall time per pipeline stage with the deterministic "
        "sampling profiler (event-count triggered; simulated behaviour is "
        "unchanged) and print a stage summary on exit",
    )
    parser.add_argument(
        "--profile-every",
        type=int,
        default=64,
        metavar="N",
        help="profiler sampling interval: time every Nth occurrence of each "
        "stage, first occurrence always (default: 64)",
    )
    parser.add_argument(
        "--speedscope",
        metavar="FILE",
        help="with --profile: write the stage tree as speedscope JSON "
        "(simulate defaults to <output>.speedscope.json)",
    )


def _add_prom_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--prom-file",
        metavar="PATH",
        help="atomically rewrite PATH in Prometheus text format every "
        "--prom-interval simulated seconds (node_exporter textfile collector)",
    )
    parser.add_argument(
        "--prom-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve live /metrics on PORT while the command runs (0 = ephemeral)",
    )
    parser.add_argument(
        "--prom-interval",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="simulated seconds between --prom-file rewrites (default: 5)",
    )


def _wants_prom(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "prom_file", None) or getattr(args, "prom_port", None) is not None
    )


def _make_obs(args: argparse.Namespace, force_metrics: bool = False) -> Observability:
    """Build the Observability bundle the command threads through the stack.

    ``force_metrics`` attaches a registry even without ``--metrics`` (used
    by ``classify --json``, whose output embeds the snapshot, and by the
    Prometheus publishers, which render it live).
    """
    trace_path = getattr(args, "trace", None)
    ring = getattr(args, "trace_ring", 0)
    sample = getattr(args, "trace_sample", 0)
    if ring and not trace_path:
        raise SystemExit("--trace-ring needs --trace FILE to dump into")
    tracer = None
    if ring:
        ring_tracer = RingBufferTracer(capacity=ring, dump_path=trace_path)
        if getattr(args, "trace_ring_signal", False):
            install_signal_dump(ring_tracer)  # no-op without SIGUSR1
        tracer = ring_tracer
    elif trace_path:
        tracer = JsonlTracer.to_path(trace_path)
    if tracer is not None and sample:
        tracer = SamplingTracer(tracer, every=sample)
    wants_metrics = force_metrics or getattr(args, "metrics", None) or _wants_prom(args)
    metrics = MetricsRegistry() if wants_metrics else None
    prof = (
        Profiler(getattr(args, "profile_every", 64), metrics=metrics)
        if getattr(args, "profile", False)
        else None
    )
    return Observability(tracer=tracer, metrics=metrics, prof=prof)


def _start_prom(args: argparse.Namespace, obs: Observability, loop=None):
    """Start the requested Prometheus publishers; returns a stop callable.

    The file writer ticks on the *simulated* clock (``--prom-interval``
    sim-seconds) so snapshots land at deterministic points of the run; the
    HTTP endpoint serves the live registry from a daemon thread.
    """
    if not _wants_prom(args):
        return lambda: None
    writer = (
        PromFileWriter(obs.metrics, args.prom_file) if args.prom_file else None
    )
    if writer is not None and loop is not None:
        loop.schedule_periodic(args.prom_interval, writer.write)
    server = None
    if args.prom_port is not None:
        server = start_http_exporter(obs.metrics, port=args.prom_port)
        print("Serving live metrics at %s" % server.url)

    def stop() -> None:
        if writer is not None:
            writer.write()  # final state, even if the loop never ticked
        if server is not None:
            server.close()

    return stop


def _finish_obs(args: argparse.Namespace, obs: Observability) -> None:
    """Flush the trace sink and persist the metrics snapshot, if requested.

    Runs in each command's ``finally`` block, so a ring-buffer tracer dumps
    its window even when the run crashes mid-way.  With ``--profile`` it
    also prints the per-stage attribution table and writes the speedscope
    export.
    """
    obs.close()
    if getattr(args, "metrics", None) and obs.metrics is not None:
        obs.metrics.write(args.metrics)
    prof = obs.prof
    if prof is not None:
        speedscope_path = getattr(args, "speedscope", None) or getattr(
            args, "_speedscope_default", None
        )
        if speedscope_path:
            prof.write_speedscope(speedscope_path)
        print(_render_prof_summary(prof))
        if speedscope_path:
            print(
                "Wrote speedscope profile to %s (open at "
                "https://www.speedscope.app/)" % speedscope_path
            )


def _render_prof_summary(prof: Profiler, top: int = 12) -> str:
    """The --profile exit table: top stages by estimated self time."""
    totals = prof.stage_totals()
    grand = sum(entry["self_seconds"] for entry in totals.values()) or 1.0
    ranked = sorted(totals.items(), key=lambda item: -item[1]["self_seconds"])
    rows = [
        [
            name,
            entry["calls"],
            entry["packets"],
            "%.3f" % entry["self_seconds"],
            "%.1f%%" % (100.0 * entry["self_seconds"] / grand),
        ]
        for name, entry in ranked[:top]
    ]
    return render_table(
        ["stage", "calls", "packets", "self [s]", "share"],
        rows,
        title="Profile (sampled every %d per stage, %.3f s attributed)"
        % (prof.every, prof.total_estimate()),
    )


# The CLI's AS database / acknowledged-scanner registry now live in
# ``repro.capstore.build`` so index-build worker processes can construct
# them by (picklable) reference; these aliases keep old import paths alive.
_default_asdb = default_asdb
_default_acknowledged = default_acknowledged


def _load_capture(
    args: argparse.Namespace,
    obs: Observability | None = None,
    pcap: str | None = None,
):
    """Load the sanitized capture through the columnar analysis plane.

    Delegates to :func:`repro.capstore.load_or_build`: a valid ``.capidx``
    sidecar loads columns straight from disk (``index.load`` timer, cache
    ``hit`` counter); otherwise one streaming dissection pass builds the
    table — over ``--workers N`` row groups when requested — and persists
    the sidecar unless ``--no-cache``.
    """
    obs = obs or Observability()
    view, _cache_hit = load_or_build(
        pcap if pcap is not None else args.pcap,
        workers=getattr(args, "workers", 1),
        use_cache=not getattr(args, "no_cache", False),
        obs=obs,
    )
    return view


def _load_shard_capture(paths: list[str], args: argparse.Namespace, obs: Observability):
    """Index several per-shard pcaps without merging them first."""
    from repro.capstore import ClassifiedView
    from repro.capstore.build import build_from_shards

    for path in paths:
        if not os.path.exists(path):
            raise SystemExit("repro %s: %s: no such pcap" % (args.command, path))
    with obs.span("index.build", local=True, shards=len(paths)):
        table, stats = build_from_shards(paths, obs=obs)
    return ClassifiedView(table, stats)


def _workers_arg(value: str):
    """``--workers`` accepts an integer or the literal ``auto``.

    ``auto`` is resolved against the scenario config by
    :func:`repro.simnet.shard.resolve_workers` once the config is built
    (the planned shard count depends on scale).
    """
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "--workers expects an integer or 'auto', got %r" % value
        ) from None


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def cmd_simulate(args: argparse.Namespace) -> int:
    config = (
        april_2021_config(seed=args.seed)
        if args.year == 2021
        else ScenarioConfig(seed=args.seed)
    )
    config = config.scaled(args.scale)
    args._speedscope_default = args.output + ".speedscope.json"
    from repro.simnet.shard import resolve_workers

    args.workers = resolve_workers(args.workers, config)
    if args.workers > 1:
        return _simulate_sharded(args, config)
    if args.keep_shards or args.no_merge:
        raise SystemExit(
            "repro simulate: --keep-shards/--no-merge need --workers N >= 2"
        )
    print("Simulating %d (scale %.2f, seed %d)…" % (args.year, args.scale, args.seed))
    from repro.workloads.scenario import plan_traffic_units

    obs = _make_obs(args)
    progress_dir = args.output + ".progress"
    clean_progress_dir(progress_dir)
    heartbeat = HeartbeatWriter(progress_dir, worker=0)
    heartbeat.total = expected_events(
        sum(unit.weight for unit in plan_traffic_units(config))
    )
    stop_prom = lambda: None  # noqa: E731 - trivial default finisher
    try:
        heartbeat.update("build")
        with obs.span("simulate.build", local=True):
            if obs.metrics is not None:
                with obs.metrics.time_block("build_scenario"):
                    scenario = build_scenario(config, obs=obs)
            else:
                scenario = build_scenario(config, obs=obs)
        stop_prom = _start_prom(args, obs, loop=scenario.loop)
        loop = scenario.loop
        telescope = scenario.telescope
        prof = obs.prof

        def on_progress(count: int) -> None:
            heartbeat.update(
                "run",
                done=count,
                records=len(telescope.records),
                span=prof.current_path if prof is not None else "",
                sim_time=loop.now,
            )

        loop.on_progress = on_progress
        heartbeat.update("run")
        with obs.span("simulate.run", local=True):
            if obs.metrics is not None:
                with obs.metrics.time_block("simulate"):
                    scenario.run()
            else:
                scenario.run()
        if obs.metrics is not None:
            with obs.metrics.time_block("write_pcap"):
                with open(args.output, "wb") as fileobj:
                    telescope.write_pcap(fileobj)
        else:
            with open(args.output, "wb") as fileobj:
                telescope.write_pcap(fileobj)
        heartbeat.update(
            "done",
            done=loop.events_processed,
            records=len(telescope.records),
            sim_time=loop.now,
            final=True,
        )
    finally:
        stop_prom()
        heartbeat.close()
        _finish_obs(args, obs)
    print(
        "Wrote %d captured packets to %s"
        % (len(scenario.telescope.records), args.output)
    )
    return 0


def _simulate_sharded(args: argparse.Namespace, config: ScenarioConfig) -> int:
    """The ``--workers N`` (N >= 2) path: fork, run shards, merge.

    The parent's registry receives the merged worker snapshots, so
    ``--metrics``/``--prom-file`` report whole-run numbers (rendered
    after the merge rather than live).  With ``--trace``, worker *k*
    writes ``FILE.worker<k>`` and the parent trace records the shard
    plan.  Same seed and scale ⇒ same merged pcap for any worker count.
    Workers heartbeat into ``<output>.progress/`` (``repro progress``
    renders it live); ``--keep-shards`` leaves the per-shard pcaps next
    to the merged file, ``--no-merge`` skips the merge entirely so
    ``repro analyze <output>.shard*`` can consume the shards directly.
    """
    from repro.simnet.shard import simulate_sharded

    print(
        "Simulating %d (scale %.2f, seed %d, %d workers)…"
        % (args.year, args.scale, args.seed, args.workers)
    )
    obs = _make_obs(args)
    stop_prom = _start_prom(args, obs)
    progress_dir = args.output + ".progress"
    kwargs = dict(
        obs=obs,
        trace_path=args.trace,
        progress_dir=progress_dir,
        keep_shards=args.keep_shards,
        merge=not args.no_merge,
    )
    try:
        if obs.metrics is not None:
            with obs.metrics.time_block("simulate"):
                result = simulate_sharded(config, args.workers, args.output, **kwargs)
        else:
            result = simulate_sharded(config, args.workers, args.output, **kwargs)
    finally:
        stop_prom()
        _finish_obs(args, obs)
    if args.no_merge:
        print(
            "Wrote %d captured packets across %d shard pcaps (%s; not merged)"
            % (result.total_records, len(result.shards), " ".join(result.shard_paths))
        )
    else:
        print(
            "Wrote %d captured packets to %s (merged from %d shards%s)"
            % (
                result.total_records,
                args.output,
                len(result.shards),
                "; shard pcaps kept" if args.keep_shards else "",
            )
        )
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    obs = _make_obs(args, force_metrics=args.json)
    try:
        if obs.metrics is not None:
            with obs.metrics.time_block("classify"):
                capture = _load_capture(args, obs=obs)
        else:
            capture = _load_capture(args, obs=obs)
    finally:
        _finish_obs(args, obs)
    stats = capture.stats
    if args.json:
        payload = {
            "pcap": args.pcap,
            "stats": {
                "total_records": stats.total_records,
                "non_udp": stats.non_udp,
                "non_port_443": stats.non_port_443,
                "failed_dissection": stats.failed_dissection,
                "acknowledged_scanner": stats.acknowledged_scanner,
                "backscatter": stats.backscatter,
                "scans": stats.scans,
                "removed": stats.removed,
                "removed_share": stats.removed_share,
            },
            "metrics": obs.metrics.snapshot(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        render_table(
            ["stage", "packets"],
            [
                ["raw records", stats.total_records],
                ["non-UDP", stats.non_udp],
                ["non-443", stats.non_port_443],
                ["failed dissection", stats.failed_dissection],
                ["acknowledged scanners", stats.acknowledged_scanner],
                ["backscatter kept", stats.backscatter],
                ["scans kept", stats.scans],
            ],
            title="Sanitization of %s (removed %.0f%%)"
            % (args.pcap, 100 * stats.removed_share),
        )
    )
    return 0


def _validate_tables(tables) -> set:
    """Resolve ``--tables`` before anything touches the pcap.

    Unknown names abort with the list of valid selectors — previously
    they were silently intersected away, so a typo like ``--tables rt0``
    cost a full dissection pass just to print nothing.
    """
    if not tables:
        return {"1", "2", "3", "4"}
    unknown = sorted(set(tables) - set(VALID_TABLES))
    if unknown:
        raise SystemExit(
            "repro analyze: unknown table name%s %s (valid names: %s)"
            % (
                "s" if len(unknown) > 1 else "",
                ", ".join(unknown),
                ", ".join(VALID_TABLES),
            )
        )
    return set(tables)


def cmd_analyze(args: argparse.Namespace) -> int:
    wanted = _validate_tables(args.tables)
    obs = _make_obs(args)
    try:
        if len(args.pcap) > 1:
            capture = _load_shard_capture(args.pcap, args, obs)
        else:
            capture = _load_capture(args, obs=obs, pcap=args.pcap[0])
        if obs.metrics is not None:
            with obs.metrics.time_block("analyze"):
                with obs.span("analyze.render", local=True):
                    print(render_analysis(capture, wanted))
        else:
            with obs.span("analyze.render", local=True):
                print(render_analysis(capture, wanted))
        return 0
    finally:
        _finish_obs(args, obs)


def render_analysis(capture, wanted: set) -> str:
    """Render the selected paper tables for a classified capture.

    ``capture`` is anything with ``backscatter``/``scans`` lists of
    CapturedPacket-shaped objects — the legacy
    :class:`~repro.telescope.classify.ClassifiedCapture` and the columnar
    :class:`~repro.capstore.ClassifiedView` render byte-identically,
    which the equivalence tests and ``bench_analyze`` assert.
    """
    parts: list[str] = []

    if "1" in wanted:
        summary = summarize(capture.backscatter)
        parts.append(
            render_table(
                ["Feature"] + list(HYPERGIANT_COLUMNS),
                [
                    ["Coalescence"]
                    + [summary[h].coalescence for h in HYPERGIANT_COLUMNS],
                    ["Server-chosen IDs"]
                    + [summary[h].server_chosen_ids for h in HYPERGIANT_COLUMNS],
                    ["Structured SCIDs"]
                    + [summary[h].structured_scids for h in HYPERGIANT_COLUMNS],
                    ["Initial RTO"]
                    + [summary[h].rto_label() for h in HYPERGIANT_COLUMNS],
                    ["# re-transmissions"]
                    + [summary[h].resend_label() for h in HYPERGIANT_COLUMNS],
                ],
                title="Table 1 — deployment configurations",
            )
        )
        parts.append("")
    if "2" in wanted:
        shares = table2(capture)
        parts.append(
            render_table(
                ["QUIC version", "Clients [%]", "Servers [%]"],
                [
                    [
                        bucket,
                        "%.1f" % shares["clients"].share(bucket),
                        "%.1f" % shares["servers"].share(bucket),
                    ]
                    for bucket in TABLE2_ROWS
                ],
                title="Table 2 — version adoption",
            )
        )
        parts.append("")
    if "3" in wanted:
        mix = packet_mix(capture.backscatter + capture.scans)
        parts.append(
            render_table(
                ["Packet type"] + list(ORIGINS),
                [
                    [cat] + ["%.2f" % mix.share(o, cat) for o in ORIGINS]
                    for cat in TABLE3_ROWS
                ],
                title="Table 3 — packet types per source network [%]",
            )
        )
        parts.append("")
    if "4" in wanted:
        stats = table4(capture.backscatter)
        parts.append(
            render_table(
                ["Origin AS", "SCID length", "Unique SCIDs"],
                [
                    [o, stats[o].length_summary(), stats[o].unique_count]
                    for o in ORIGINS
                    if o in stats
                ],
                title="Table 4 — SCID statistics",
            )
        )
        parts.append("")
    if "rto" in wanted:
        profiles = timing_profiles(capture.backscatter)
        parts.append(
            render_table(
                ["Origin", "sessions", "initial RTO [s]", "resends"],
                [
                    [
                        o,
                        profiles[o].sessions,
                        "%.2f" % (profiles[o].initial_rto or 0),
                        str(profiles[o].resend_range),
                    ]
                    for o in ORIGINS
                    if o in profiles
                ],
                title="Figure 3/4 — retransmission behaviour",
            )
        )
        parts.append("")
    if "lengths" in wanted:
        for origin, entries in top_length_signatures(capture.backscatter).items():
            parts.append(render_histogram(entries, width=30, title=origin))
            parts.append("")
    return "\n".join(parts)


def cmd_live(args: argparse.Namespace) -> int:
    """Follow growing capture(s), stream rows into the online analyses.

    Each ``--interval`` seconds every capture is polled: newly completed
    records are dissected and appended to the follower's table, the new
    rows are fed to the :class:`~repro.stream.StreamAnalyses` reducers,
    the ``stream.*`` gauges are (re)published, and the dashboard is
    reprinted.  When no capture has produced a new record for
    ``--exit-idle`` consecutive polls (or on Ctrl-C), the loop ends and
    the *batch* analysis is rendered from the accumulated table — for a
    single pcap that output is byte-for-byte what ``repro analyze``
    prints, because the table is the same; for a shard set a fresh
    ``build_from_shards`` pass reproduces the merged-order table first.
    """
    from repro.stream import PcapFollower, StreamAnalyses, render_dashboard

    wanted = _validate_tables(args.tables)
    obs = _make_obs(args, force_metrics=True)
    followers = [
        PcapFollower(path, obs=obs, use_cache=not args.no_cache)
        for path in args.pcap
    ]
    analyses = StreamAnalyses()
    fed = [0] * len(followers)
    seen_resets = [0] * len(followers)
    writer = (
        PromFileWriter(obs.metrics, args.prom_file)
        if getattr(args, "prom_file", None)
        else None
    )
    server = None
    if getattr(args, "prom_port", None) is not None:
        server = start_http_exporter(obs.metrics, port=args.prom_port)
        print("Serving live metrics at %s" % server.url)
    polls = 0
    idle = 0
    try:
        while True:
            new_rows = 0
            for i, follower in enumerate(followers):
                follower.poll()
                if follower.resets != seen_resets[i]:
                    # A capture shrank (fresh run reusing the path): all
                    # fed-row cursors are void, so rebuild the reducers
                    # from every follower's current table.
                    print(
                        "note: %s was rewritten; restarting online analyses"
                        % follower.path,
                        file=sys.stderr,
                    )
                    seen_resets = [f.resets for f in followers]
                    analyses = StreamAnalyses()
                    fed = [0] * len(followers)
                if follower.num_rows > fed[i]:
                    analyses.feed(follower.table, fed[i], follower.num_rows)
                    new_rows += follower.num_rows - fed[i]
                    fed[i] = follower.num_rows
            polls += 1
            analyses.publish(obs.metrics)
            if writer is not None:
                writer.write()
            if not args.quiet:
                print(render_dashboard(followers, analyses, polls))
                print()
            idle = idle + 1 if new_rows == 0 else 0
            if args.exit_idle and idle >= args.exit_idle:
                break
            _wall.sleep(args.interval)
    except KeyboardInterrupt:
        print("interrupted; rendering final analysis", file=sys.stderr)
    finally:
        for follower in followers:
            follower.finish()
        if server is not None:
            server.close()
        if writer is not None:
            writer.write()
        _finish_obs(args, obs)
    if len(args.pcap) > 1:
        missing = [path for path in args.pcap if not os.path.exists(path)]
        if missing:
            print(
                "repro live: shard pcap(s) never appeared: %s"
                % ", ".join(missing),
                file=sys.stderr,
            )
            return 1
        # Re-index the shard set in merged record order so the final
        # render matches `repro analyze shard1 shard2 …` byte for byte.
        from repro.capstore import ClassifiedView
        from repro.capstore.build import build_from_shards

        table, stats = build_from_shards(args.pcap)
        view = ClassifiedView(table, stats)
    else:
        follower = followers[0]
        if not follower.started:
            print(
                "repro live: %s: no capture appeared" % args.pcap[0],
                file=sys.stderr,
            )
            return 1
        view = follower.view()
    print(render_analysis(view, wanted))
    return 0


def cmd_index(args: argparse.Namespace) -> int:
    """Prebuild or inspect the ``.capidx`` sidecar for a pcap."""
    if len(args.pcap) > 1:
        # Shard mode: index the per-worker pcaps in one pass.  The table
        # lives in memory only — a .capidx sidecar describes exactly one
        # source pcap, so none is persisted; merge the shards (or pass a
        # single pcap) to build a durable index.
        if args.info or args.force:
            raise SystemExit(
                "repro index: --info/--force apply to a single pcap, not shards"
            )
        obs = _make_obs(args, force_metrics=True)
        try:
            view = _load_shard_capture(args.pcap, args, obs)
        finally:
            _finish_obs(args, obs)
        stats = view.stats
        print(
            "Indexed %d shard pcaps in memory: %d rows (%d backscatter, %d "
            "scans) from %d records (no sidecar written)"
            % (
                len(args.pcap),
                len(view),
                stats.backscatter,
                stats.scans,
                stats.total_records,
            )
        )
        return 0
    args.pcap = args.pcap[0]
    index_path = sidecar_path(args.pcap)
    if args.info:
        try:
            header = read_header(index_path)
        except FileNotFoundError:
            print("%s: no index (run `repro index %s`)" % (index_path, args.pcap))
            return 1
        except Exception as exc:  # CapIndexError and friends
            print("%s: unreadable index: %s" % (index_path, exc))
            return 1
        stats = header.get("stats", {})
        valid = fingerprint_matches(header.get("source", {}), args.pcap)
        print(
            render_table(
                ["field", "value"],
                [
                    ["schema version", header["_schema_version"]],
                    ["rows", header["rows"]],
                    ["packets", header["packets"]],
                    ["origins", ", ".join(header.get("origins", []))],
                    ["backscatter", stats.get("backscatter", "?")],
                    ["scans", stats.get("scans", "?")],
                    ["source records", stats.get("total_records", "?")],
                    ["source size", header.get("source", {}).get("size", "?")],
                    ["valid for pcap", "yes" if valid else "STALE"],
                ],
                title="Capture index %s" % index_path,
            )
        )
        return 0 if valid else 1
    if args.force:
        import os as _os

        try:
            _os.unlink(index_path)
        except FileNotFoundError:
            pass
    obs = _make_obs(args, force_metrics=True)
    try:
        view, cache_hit = load_or_build(args.pcap, workers=args.workers, obs=obs)
    finally:
        _finish_obs(args, obs)
    stats = view.stats
    print(
        "%s %s: %d rows (%d backscatter, %d scans) from %d records%s"
        % (
            "Validated" if cache_hit else "Indexed",
            index_path,
            len(view),
            stats.backscatter,
            stats.scans,
            stats.total_records,
            "" if cache_hit else " [workers=%d]" % args.workers,
        )
    )
    return 0


def cmd_probe(args: argparse.Namespace) -> int:
    from repro.active.prober import Prober
    from repro.workloads.scenario import build_lb_lab

    obs = _make_obs(args)
    lab = build_lb_lab(
        google_hosts=args.hosts,
        facebook_hosts=args.hosts,
        quic_lb_hosts=args.hosts,
        seed=args.seed,
        obs=obs,
    )
    prober = Prober(lab.loop, lab.network)
    stop_prom = _start_prom(args, obs, loop=lab.loop)
    try:
        if obs.metrics is not None:
            with obs.metrics.time_block("probe.%s" % args.experiment):
                return _run_probe(args, lab, prober)
        return _run_probe(args, lab, prober)
    finally:
        stop_prom()
        _finish_obs(args, obs)


def _run_probe(args: argparse.Namespace, lab, prober) -> int:
    from repro.active.lb_inference import classify_lb, follow_up_delay
    from repro.active.migration import migration_probe
    from repro.core.l7lb import convergence_curve

    if args.experiment == "enumerate":
        vip = lab.vips("Facebook")[0]
        ids = prober.enumerate_host_ids(vip, args.handshakes)
        curve = convergence_curve([h for h in ids if h is not None])
        print(
            "Enumerated %d L7LBs behind one VIP in %d handshakes"
            % (curve.total, len(ids))
        )
        for checkpoint in (50, 100, 200, len(ids)):
            if checkpoint <= len(ids):
                print(
                    "  after %5d handshakes: %5.1f%% of host IDs"
                    % (checkpoint, 100 * curve.coverage_at(checkpoint))
                )
    elif args.experiment == "lb-type":
        for name in ("Facebook", "Google"):
            outcome = follow_up_delay(prober, lab.vips(name)[0], max_wait=400.0)
            print(
                "%-9s follow-up succeeded after %6.1f s -> %s"
                % (name, outcome.delay, classify_lb(outcome))
            )
    elif args.experiment == "migration":
        for name in ("Facebook", "Google", "QuicLB"):
            same = migration_probe(prober, lab.vips(name)[0])
            rotated = migration_probe(prober, lab.vips(name)[1], rotate_cid=True)
            print(
                "%-9s same-CID migration: %-9s rotated-CID: %s"
                % (
                    name,
                    "survived" if same.survived else "broken",
                    "survived" if rotated.survived else "broken",
                )
            )
    return 0


def _flatten_snapshot(snapshot: dict) -> dict:
    """One (section, metric, label-key) → value map per snapshot.

    Histogram series flatten to their ``count``/``sum``; timers to
    ``seconds``/``calls``.  This is the comparison domain of ``--diff``.
    """
    flat: dict = {}
    for section in ("counters", "gauges"):
        for name, body in snapshot.get(section, {}).items():
            for key, value in body["values"].items():
                flat[(section, name, key)] = value
    for name, body in snapshot.get("histograms", {}).items():
        for key, series in body["values"].items():
            flat[("histograms", name + ".count", key)] = series["count"]
            flat[("histograms", name + ".sum", key)] = series["sum"]
    for stage, entry in snapshot.get("timers", {}).items():
        flat[("timers", stage + ".seconds", "")] = entry["seconds"]
        flat[("timers", stage + ".calls", "")] = entry["calls"]
    return flat


def _format_delta_value(value: float) -> str:
    if value == int(value):
        return "%+d" % value if value else "0"
    return "%+.3f" % value


def _load_snapshot_or_exit(path: str) -> dict:
    """``load_snapshot`` with one-line CLI errors instead of tracebacks.

    Missing and truncated snapshot files are routine operator input (a
    crashed run, a typo'd path) and must not dump a stack.
    """
    try:
        return load_snapshot(path)
    except FileNotFoundError:
        raise SystemExit("repro stats: %s: no such snapshot file" % path)
    except json.JSONDecodeError as exc:
        raise SystemExit(
            "repro stats: %s: invalid snapshot JSON at line %d (truncated "
            "write?)" % (path, exc.lineno)
        )
    except OSError as exc:
        raise SystemExit("repro stats: %s: %s" % (path, exc.strerror or exc))


def _diff_rows(flat_a: dict, flat_b: dict) -> tuple[list, int]:
    """Delta table rows between two flattened snapshots (B minus A).

    Returns ``(rows, unchanged)`` — shared by ``stats --diff`` and the
    per-update delta rendering of ``stats --follow``.
    """
    rows = []
    unchanged = 0
    for key in sorted(set(flat_a) | set(flat_b)):
        _section, name, labels = key
        a_value = flat_a.get(key)
        b_value = flat_b.get(key)
        delta = (b_value or 0) - (a_value or 0)
        if a_value is not None and b_value is not None and not delta:
            unchanged += 1
            continue
        if a_value is None:
            change = "new"
        elif b_value is None:
            change = "gone"
        elif a_value:
            change = "%+.1f%%" % (100.0 * delta / a_value)
        else:
            change = "-"
        rows.append(
            [
                name,
                labels or "-",
                "-" if a_value is None else a_value,
                "-" if b_value is None else b_value,
                _format_delta_value(delta),
                change,
            ]
        )
    return rows, unchanged


def cmd_stats_diff(path_a: str, path_b: str) -> int:
    """Per-metric deltas between two ``--metrics`` snapshots (B minus A)."""
    flat_a = _flatten_snapshot(_load_snapshot_or_exit(path_a))
    flat_b = _flatten_snapshot(_load_snapshot_or_exit(path_b))
    if not flat_a and not flat_b:
        print("neither file contains metrics sections (not --metrics snapshots?)")
        return 1
    rows, unchanged = _diff_rows(flat_a, flat_b)
    if rows:
        print(
            render_table(
                ["metric", "labels", "A", "B", "delta", "change"],
                rows,
                title="Snapshot diff: %s -> %s" % (path_a, path_b),
            )
        )
    print("%d changed, %d unchanged" % (len(rows), unchanged))
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Pretty-print a metrics snapshot written by ``--metrics``."""
    if args.diff:
        return cmd_stats_diff(args.diff[0], args.diff[1])
    if not args.metrics_file:
        print("repro stats: give a snapshot file, or --diff A.json B.json")
        return 2
    if getattr(args, "follow", None):
        return _stats_follow(args)
    snapshot = _load_snapshot_or_exit(args.metrics_file)
    if not any(
        snapshot.get(section)
        for section in ("timers", "counters", "gauges", "histograms")
    ):
        print("%s: no metrics sections found (not a --metrics snapshot?)"
              % args.metrics_file)
        return 1
    _print_snapshot(snapshot)
    return 0


def _stats_follow(args: argparse.Namespace) -> int:
    """``stats --follow``: re-render whenever the snapshot file changes.

    A thin consumer of the streaming plane's tail machinery
    (:class:`~repro.stream.tail.SnapshotTail`): the first load prints the
    full snapshot, later loads print only the per-metric deltas against
    the previous one.  ``--updates N`` bounds the number of loads (for
    scripting and tests); the default 0 follows until interrupted.
    """
    from repro.stream.tail import SnapshotTail

    tail = SnapshotTail(args.metrics_file)
    previous = None
    shown = 0
    announced = False
    try:
        while True:
            snapshot = tail.poll()
            if snapshot is not None:
                flat = _flatten_snapshot(snapshot)
                if previous is None:
                    _print_snapshot(snapshot)
                else:
                    rows, unchanged = _diff_rows(previous, flat)
                    if rows:
                        print(
                            render_table(
                                ["metric", "labels", "A", "B", "delta", "change"],
                                rows,
                                title="Changes in %s" % args.metrics_file,
                            )
                        )
                    print("%d changed, %d unchanged" % (len(rows), unchanged))
                previous = flat
                shown += 1
                if args.updates and shown >= args.updates:
                    return 0
                print()
            elif previous is None and not announced:
                print("waiting for %s…" % args.metrics_file, file=sys.stderr)
                announced = True
            _wall.sleep(args.follow)
    except KeyboardInterrupt:
        return 0


def _print_snapshot(snapshot: dict) -> None:
    """Render every section of one metrics snapshot to stdout."""

    def label_text(names, key):
        if not names:
            return "-"
        values = key.split("|") if key else [""] * len(names)
        return ", ".join("%s=%s" % (n, v) for n, v in zip(names, values))

    timers = snapshot.get("timers", {})
    if timers:
        print(
            render_table(
                ["stage", "seconds", "calls"],
                [
                    [stage, "%.3f" % entry["seconds"], entry["calls"]]
                    for stage, entry in sorted(timers.items())
                ],
                title="Stage timings",
            )
        )
        print()
    for section, kind in (("counters", "Counters"), ("gauges", "Gauges")):
        metrics = snapshot.get(section, {})
        rows = [
            [name, label_text(body["label_names"], key), value]
            for name, body in sorted(metrics.items())
            for key, value in body["values"].items()
        ]
        if rows:
            print(render_table(["metric", "labels", "value"], rows, title=kind))
            print()
    for name, body in sorted(snapshot.get("histograms", {}).items()):
        for key, series in body["values"].items():
            title = name
            labels = label_text(body["label_names"], key)
            if labels != "-":
                title += " {%s}" % labels
            print(
                render_histogram(
                    list(zip(body["buckets"], series["counts"])),
                    width=30,
                    title=title,
                )
            )
            print()


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    """Per-category counts and top event names of a JSONL trace."""
    import warnings

    categories: dict = {}
    names: dict = {}
    estimated: dict = {}
    total = 0
    first_time = last_time = None
    # ``read_trace`` signals a truncated tail with a RuntimeWarning.  The
    # default warning printer already targets stderr, but it is silenced
    # by -W ignore / PYTHONWARNINGS and captured wholesale under test
    # runners; catching and re-printing makes the notice reach stderr
    # unconditionally while keeping stdout parseable.
    # ``read_trace`` is a generator, so a missing file would only surface
    # (as a traceback) on first iteration; probe now for a one-line error.
    try:
        open(args.trace_file).close()
    except OSError as exc:
        raise SystemExit(
            "repro trace summarize: %s: %s"
            % (args.trace_file, exc.strerror or exc)
        )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for event in read_trace(args.trace_file):
            total += 1
            category = event.get("category", "?")
            key = "%s:%s" % (category, event.get("name", "?"))
            categories[category] = categories.get(category, 0) + 1
            names[key] = names.get(key, 0) + 1
            # Sampled events carry their thinning factor; rescale to estimate
            # the pre-sampling event volume.
            weight = event.get("data", {}).get("sampled", 1)
            estimated[key] = estimated.get(key, 0) + weight
            time = event.get("time", 0.0)
            first_time = time if first_time is None else min(first_time, time)
            last_time = time if last_time is None else max(last_time, time)
    for warning in caught:
        print("warning: %s" % warning.message, file=sys.stderr)
    if not total:
        print("%s: no events" % args.trace_file)
        return 1
    sampled = sum(estimated.values()) > total
    print(
        "%s: %d events, %d types, sim time %.3f..%.3f s%s"
        % (
            args.trace_file,
            total,
            len(names),
            first_time,
            last_time,
            " (sampled; estimated %d pre-sampling)" % sum(estimated.values())
            if sampled
            else "",
        )
    )
    print()
    print(
        render_histogram(
            sorted(categories.items(), key=lambda item: -item[1]),
            width=30,
            title="Events per category",
        )
    )
    print()
    top = sorted(names.items(), key=lambda item: (-item[1], item[0]))[: args.top]
    headers = ["event", "count", "share"]
    rows = [
        [key, count, "%.1f%%" % (100.0 * count / total)] for key, count in top
    ]
    if sampled:
        headers.append("estimated")
        for row, (key, _count) in zip(rows, top):
            row.append(estimated[key])
    print(
        render_table(
            headers, rows, title="Top %d event types" % len(rows)
        )
    )
    return 0


def cmd_trace_merge(args: argparse.Namespace) -> int:
    """K-way-merge per-worker span streams into one canonical timeline."""
    for path in args.inputs:
        if not os.path.exists(path):
            raise SystemExit("repro trace merge: %s: no such trace file" % path)
    count = merge_span_timelines(args.inputs, args.output)
    print(
        "Merged %d spans from %d traces into %s"
        % (count, len(args.inputs), args.output)
    )
    return 0


def cmd_trace_tail(args: argparse.Namespace) -> int:
    """Follow a growing JSONL trace: ``tail -f`` with torn-line safety.

    Events appended since the previous poll print as one line each —
    ``--raw`` passes the JSON through compactly, the default formats
    ``time category:name data``.  A partial trailing line (the writer
    caught mid-record) is buffered until complete; a truncated file is
    treated as rotated and followed from the start.  ``--exit-idle N``
    stops after N polls without new events (0 = follow until Ctrl-C).
    """
    from repro.stream import JsonlTail

    tail = JsonlTail(args.trace_file)
    announced = False
    reported_bad = 0
    reported_resets = 0
    idle = 0
    try:
        while True:
            events = tail.poll()
            if tail.resets > reported_resets:
                reported_resets = tail.resets
                print(
                    "note: %s was truncated; following from the start"
                    % args.trace_file,
                    file=sys.stderr,
                )
            for event in events:
                if args.raw:
                    print(json.dumps(event, separators=(",", ":")))
                else:
                    print(
                        "%12.6f %s:%s %s"
                        % (
                            event.get("time", 0.0),
                            event.get("category", "?"),
                            event.get("name", "?"),
                            json.dumps(
                                event.get("data", {}), separators=(",", ":")
                            ),
                        )
                    )
            if tail.bad_lines > reported_bad:
                print(
                    "note: skipped %d malformed line(s) in %s"
                    % (tail.bad_lines - reported_bad, args.trace_file),
                    file=sys.stderr,
                )
                reported_bad = tail.bad_lines
            if events:
                idle = 0
            else:
                if tail.offset == 0 and not announced:
                    print(
                        "waiting for %s…" % args.trace_file, file=sys.stderr
                    )
                    announced = True
                idle += 1
                if args.exit_idle and idle >= args.exit_idle:
                    return 0
            _wall.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def cmd_progress(args: argparse.Namespace) -> int:
    """Render (or follow) the heartbeat table of a sharded run.

    ``target`` is either the progress directory itself or the simulate
    output path (heartbeats live in ``<output>.progress/``).  In follow
    mode the table reprints every ``--interval`` seconds until every
    worker reports done.  A heartbeat that disappears (or is caught
    mid-write) between the directory listing and the read — routine when
    a finishing run cleans up under a live ``repro top`` — is skipped
    with a one-line stderr note rather than failing the table.
    """
    directory = resolve_progress_dir(args.target)
    while True:
        skipped: list[str] = []
        beats = read_heartbeats(directory, skipped=skipped)
        print(render_progress(beats))
        if skipped:
            print(
                "note: skipped %d unreadable heartbeat(s): %s"
                % (len(skipped), ", ".join(skipped)),
                file=sys.stderr,
            )
        if not args.follow:
            return 0 if beats else 1
        if beats and aggregate(beats)["running"] == 0:
            return 0
        _wall.sleep(args.interval)
        print()


def cmd_sweep_run(args: argparse.Namespace) -> int:
    """Expand a grid spec, run every cell, write manifest + results."""
    from repro.sweep import SweepRunError, SweepSpecError, load_spec, run_sweep

    try:
        spec = load_spec(args.spec)
    except SweepSpecError as exc:
        raise SystemExit("repro sweep run: %s" % exc)
    outdir = args.out or os.path.splitext(args.spec)[0] + ".sweep"
    cells = spec.cells()
    print(
        "Sweep %s: %d cells (%s) -> %s"
        % (
            spec.name,
            len(cells),
            " x ".join(
                "%s[%d]" % (axis, len(values))
                for axis, values in spec.axes.items()
            ),
            outdir,
        )
    )
    obs = _make_obs(args, force_metrics=True)
    stop_prom = _start_prom(args, obs)
    seen = [0]

    def on_cell(cell, outcome) -> None:
        seen[0] += 1
        if not args.quiet:
            print(
                "  [%*d/%d] %-40s %-9s %6d records  %6.2fs"
                % (
                    len(str(len(cells))),
                    seen[0],
                    len(cells),
                    cell.label,
                    outcome.status,
                    outcome.records,
                    outcome.wall_seconds,
                )
            )

    try:
        with (
            obs.metrics.time_block("sweep")
            if obs.metrics is not None
            else _null_context()
        ):
            result = run_sweep(
                spec,
                outdir,
                workers=args.workers,
                force=args.force,
                obs=obs,
                on_cell=on_cell,
            )
    except SweepRunError as exc:
        raise SystemExit(
            "repro sweep run: %s (see `repro sweep status %s`)" % (exc, outdir)
        )
    finally:
        stop_prom()
        _finish_obs(args, obs)
    print(
        "Swept %d cells (%d simulated, %d cached) in %.2fs -> %s, %s"
        % (
            len(result.cells),
            result.simulated,
            result.cached,
            result.wall_seconds,
            result.csv_path,
            result.manifest_path,
        )
    )
    return 0


def _null_context():
    import contextlib

    return contextlib.nullcontext()


def cmd_sweep_status(args: argparse.Namespace) -> int:
    """Render a sweep directory's manifest (plus live heartbeats)."""
    from repro.sweep import RenderError, render_status

    try:
        print(render_status(args.outdir))
    except RenderError as exc:
        raise SystemExit("repro sweep status: %s" % exc)
    return 0


def cmd_sweep_render(args: argparse.Namespace) -> int:
    """Pivot sweep results into a terminal heatmap (and optional CSV)."""
    from repro.sweep import RenderError, heatmap_csv, load_results, render_heatmap

    try:
        results = load_results(args.outdir)
        axes = list(results["axes"])
        if len(axes) < 2:
            raise RenderError(
                "a heatmap needs two axes; this sweep has %s — read %s/results.csv"
                % (", ".join(axes) or "none", args.outdir)
            )
        metric = args.metric or results["metrics"][0]
        x_axis = args.x or axes[-1]
        y_axis = args.y or next(a for a in axes if a != x_axis)
        fixed = {}
        for pin in args.fix or ():
            axis, sep, value = pin.partition("=")
            if not sep:
                raise RenderError("--fix wants axis=value (got %r)" % pin)
            fixed[axis] = value
        print(render_heatmap(results, metric, x_axis, y_axis, fixed))
        if args.csv:
            with open(args.csv, "w") as fileobj:
                fileobj.write(heatmap_csv(results, metric, x_axis, y_axis, fixed))
            print("Wrote pivoted CSV to %s" % args.csv)
    except RenderError as exc:
        raise SystemExit("repro sweep render: %s" % exc)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static determinism/invariant analyzer over Python sources.

    Exit status is the number of *new* (unbaselined, unsuppressed)
    findings — 0 means the tree honours the determinism contract.  The
    committed baseline (``lint_baseline.json``, empty in this repo)
    exists so a fork can adopt the linter before paying down debt;
    ``--update-baseline`` regenerates it from the current findings.
    """
    from repro.lint import (
        Baseline,
        BaselineError,
        lint_paths,
        render_json,
        render_rules,
        render_text,
    )

    if args.rules:
        print(render_rules())
        return 0
    paths = args.paths or ["src"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        raise SystemExit("repro lint: no such path: %s" % ", ".join(missing))
    try:
        baseline = Baseline.load(args.baseline)
    except BaselineError as exc:
        raise SystemExit("repro lint: %s" % exc)
    result = lint_paths(paths, baseline=baseline)
    if args.update_baseline:
        Baseline.write(args.baseline, result.findings + result.baselined)
        print(
            "Wrote %d finding(s) to %s"
            % (len(result.findings) + len(result.baselined), args.baseline)
        )
        return 0
    if args.json:
        print(render_json(result))
    else:
        print(render_text(result, verbose_baseline=args.show_baselined))
    return len(result.findings)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Passive measurement toolchain for QUIC deployments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="simulate a month, write pcap")
    simulate.add_argument("output", help="pcap file to write")
    simulate.add_argument("--year", type=int, choices=(2021, 2022), default=2022)
    simulate.add_argument("--scale", type=float, default=0.25)
    simulate.add_argument("--seed", type=int, default=20220101)
    simulate.add_argument(
        "--workers",
        type=_workers_arg,
        default=1,
        metavar="N|auto",
        help="shard the scenario across N worker processes and merge the "
        "captures into one time-ordered pcap (1 = serial; the merged "
        "output is identical for any N at the same seed and scale); "
        "'auto' resolves to min(cpu count, planned shards) and falls "
        "back to serial on 1-CPU boxes",
    )
    simulate.add_argument(
        "--keep-shards",
        action="store_true",
        help="with --workers: leave the per-shard pcaps (<output>.shard<k>) "
        "on disk after the merge",
    )
    simulate.add_argument(
        "--no-merge",
        action="store_true",
        help="with --workers: skip the merge step entirely; analyze/index "
        "consume the shard pcaps directly (repro analyze out.pcap.shard*)",
    )
    _add_obs_flags(simulate)
    _add_prom_flags(simulate)
    simulate.set_defaults(func=cmd_simulate)

    def _add_capstore_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="dissect the pcap over N worker processes on an index "
            "cache miss (row-group parallel; output identical for any N)",
        )
        command.add_argument(
            "--no-cache",
            action="store_true",
            help="ignore and do not write the .capidx sidecar index",
        )

    classify = sub.add_parser("classify", help="sanitize a pcap, print stats")
    classify.add_argument("pcap")
    classify.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable stats (includes the metrics snapshot)",
    )
    _add_capstore_flags(classify)
    _add_obs_flags(classify)
    classify.set_defaults(func=cmd_classify)

    analyze = sub.add_parser("analyze", help="reproduce tables from a pcap")
    analyze.add_argument(
        "pcap",
        nargs="+",
        help="capture to analyze; several paths (e.g. out.pcap.shard*) are "
        "treated as per-worker shard pcaps and indexed without a merge",
    )
    analyze.add_argument(
        "--tables",
        nargs="*",
        metavar="NAME",
        help="which outputs to print: %s (default: 1 2 3 4); unknown "
        "names abort before the pcap is read" % " ".join(VALID_TABLES),
    )
    _add_capstore_flags(analyze)
    _add_obs_flags(analyze)
    analyze.set_defaults(func=cmd_analyze)

    live = sub.add_parser(
        "live",
        help="follow a growing capture: online analyses, live dashboard, "
        "Prometheus gauges, batch-identical final render",
    )
    live.add_argument(
        "pcap",
        nargs="+",
        help="capture(s) to follow; several paths are treated as a "
        "--no-merge shard set and followed in parallel",
    )
    live.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between polls of the capture file(s) (default: 1)",
    )
    live.add_argument(
        "--exit-idle",
        type=int,
        default=3,
        metavar="N",
        help="stop once N consecutive polls saw no new records, then print "
        "the final batch analysis (default: 3; 0 = follow until Ctrl-C)",
    )
    live.add_argument(
        "--tables",
        nargs="*",
        metavar="NAME",
        help="which outputs the final render prints: %s (default: 1 2 3 4)"
        % " ".join(VALID_TABLES),
    )
    live.add_argument(
        "--no-cache",
        action="store_true",
        help="do not seed from or persist the .capidx sidecar index",
    )
    live.add_argument(
        "--quiet",
        action="store_true",
        help="skip the per-poll dashboard; print only the final analysis",
    )
    _add_obs_flags(live)
    _add_prom_flags(live)
    live.set_defaults(func=cmd_live)

    index = sub.add_parser(
        "index", help="prebuild or inspect the .capidx analysis index"
    )
    index.add_argument(
        "pcap",
        nargs="+",
        help="pcap to index; several paths are treated as per-worker shard "
        "pcaps and indexed in one in-memory pass (no sidecar written)",
    )
    index.add_argument(
        "--info",
        action="store_true",
        help="inspect the existing index header instead of building",
    )
    index.add_argument(
        "--force",
        action="store_true",
        help="rebuild even when a valid index exists",
    )
    index.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="dissect over N worker processes when building",
    )
    _add_obs_flags(index)
    index.set_defaults(func=cmd_index)

    probe = sub.add_parser("probe", help="run active experiments against a lab")
    probe.add_argument(
        "experiment", choices=("enumerate", "lb-type", "migration")
    )
    probe.add_argument("--hosts", type=int, default=12)
    probe.add_argument("--handshakes", type=int, default=500)
    probe.add_argument("--seed", type=int, default=7)
    _add_obs_flags(probe)
    _add_prom_flags(probe)
    probe.set_defaults(func=cmd_probe)

    stats = sub.add_parser(
        "stats", help="pretty-print a --metrics snapshot, or diff two"
    )
    stats.add_argument(
        "metrics_file",
        nargs="?",
        help="metrics JSON written by --metrics",
    )
    stats.add_argument(
        "--diff",
        nargs=2,
        metavar=("A.json", "B.json"),
        help="print per-metric deltas (and %% change) between two snapshots",
    )
    stats.add_argument(
        "--follow",
        type=float,
        default=None,
        metavar="SECONDS",
        help="re-render whenever the snapshot file changes, polling every "
        "SECONDS; the first load prints the full snapshot, later loads "
        "print deltas",
    )
    stats.add_argument(
        "--updates",
        type=int,
        default=0,
        metavar="N",
        help="with --follow: exit after N snapshot loads (0 = until Ctrl-C)",
    )
    stats.set_defaults(func=cmd_stats)

    trace = sub.add_parser("trace", help="inspect qlog-style JSONL traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize", help="per-category counts and top event names"
    )
    summarize.add_argument("trace_file", help="JSONL trace written by --trace")
    summarize.add_argument(
        "--top", type=int, default=15, help="how many event types to list"
    )
    summarize.set_defaults(func=cmd_trace_summarize)
    merge = trace_sub.add_parser(
        "merge",
        help="k-way-merge per-worker span streams into one canonical "
        "timeline (byte-identical for any worker count)",
    )
    merge.add_argument("output", help="merged span timeline to write (JSONL)")
    merge.add_argument(
        "inputs", nargs="+", help="per-worker traces (FILE.worker<k>)"
    )
    merge.set_defaults(func=cmd_trace_merge)
    tail = trace_sub.add_parser(
        "tail",
        help="follow a growing JSONL trace (tail -f with torn-line safety)",
    )
    tail.add_argument("trace_file", help="JSONL trace being written by --trace")
    tail.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="seconds between polls (default: 0.5)",
    )
    tail.add_argument(
        "--exit-idle",
        type=int,
        default=0,
        metavar="N",
        help="stop after N polls without new events (0 = until Ctrl-C)",
    )
    tail.add_argument(
        "--raw",
        action="store_true",
        help="print events as compact JSON instead of formatted lines",
    )
    tail.set_defaults(func=cmd_trace_tail)

    progress = sub.add_parser(
        "progress", help="render the heartbeat table of a sharded run"
    )
    progress.add_argument(
        "target",
        help="progress directory, or the simulate/index output path "
        "(heartbeats live in <output>.progress/)",
    )
    progress.add_argument(
        "--follow",
        action="store_true",
        help="reprint until every worker reports done",
    )
    progress.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between refreshes in follow mode (default: 2)",
    )
    progress.set_defaults(func=cmd_progress)

    sweep = sub.add_parser(
        "sweep", help="deterministic parameter-grid experiments"
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)
    sweep_run = sweep_sub.add_parser(
        "run",
        help="expand a grid spec into cells, simulate each at most once, "
        "write manifest + heatmap-ready long-form CSV/JSON",
    )
    sweep_run.add_argument(
        "spec", help="grid spec file (JSON; TOML on Python >= 3.11)"
    )
    sweep_run.add_argument(
        "--out",
        metavar="DIR",
        help="sweep output directory (default: spec path with the "
        "extension replaced by .sweep)",
    )
    sweep_run.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan cells across N worker processes (results byte-identical "
        "for any N; each cell simulates in-process)",
    )
    sweep_run.add_argument(
        "--force",
        action="store_true",
        help="re-simulate every cell, ignoring cached captures",
    )
    sweep_run.add_argument(
        "--quiet",
        action="store_true",
        help="skip the per-cell progress lines",
    )
    _add_obs_flags(sweep_run)
    _add_prom_flags(sweep_run)
    sweep_run.set_defaults(func=cmd_sweep_run)
    sweep_status = sweep_sub.add_parser(
        "status",
        help="per-cell state of a sweep directory (live heartbeats while "
        "cells are pending)",
    )
    sweep_status.add_argument("outdir", help="sweep output directory")
    sweep_status.set_defaults(func=cmd_sweep_status)
    sweep_render = sweep_sub.add_parser(
        "render",
        help="terminal heatmap of one metric over two axes (+ CSV export)",
    )
    sweep_render.add_argument("outdir", help="sweep output directory")
    sweep_render.add_argument(
        "--metric",
        metavar="NAME",
        help="metric to render (default: the spec's first metric)",
    )
    sweep_render.add_argument(
        "--x", metavar="AXIS", help="column axis (default: the last axis)"
    )
    sweep_render.add_argument(
        "--y", metavar="AXIS", help="row axis (default: the first axis)"
    )
    sweep_render.add_argument(
        "--fix",
        action="append",
        metavar="AXIS=VALUE",
        help="pin an extra axis to one value (repeatable); unfixed extra "
        "axes are mean-aggregated with a note",
    )
    sweep_render.add_argument(
        "--csv",
        metavar="FILE",
        help="also write the pivoted grid as CSV to FILE",
    )
    sweep_render.set_defaults(func=cmd_sweep_render)

    lint = sub.add_parser(
        "lint",
        help="static determinism/invariant analysis over Python sources",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report (same shape as the tools/ "
        "checkers' --json output)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        default="lint_baseline.json",
        help="baseline of grandfathered findings (default: "
        "lint_baseline.json; a missing file is an empty baseline)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit 0",
    )
    lint.add_argument(
        "--show-baselined",
        action="store_true",
        help="also list baselined findings (they never fail the run)",
    )
    lint.add_argument(
        "--rules",
        action="store_true",
        help="list the rule pack and exit",
    )
    lint.set_defaults(func=cmd_lint)

    top = sub.add_parser(
        "top", help="live-follow a sharded run's progress (progress --follow)"
    )
    top.add_argument("target", help="progress directory or simulate output path")
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="seconds between refreshes (default: 1)",
    )
    top.set_defaults(func=cmd_progress, follow=True)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
