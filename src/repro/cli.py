"""Command-line interface: ``python -m repro <command>``.

Five commands cover the toolchain end to end:

* ``simulate`` — build a telescope measurement month and write the capture
  to a standard pcap file;
* ``classify`` — run the sanitization pipeline over a pcap and print what
  was kept and removed (``--json`` for machine-readable stats);
* ``analyze``  — reproduce the paper's tables from a pcap;
* ``probe``    — run the active-measurement experiments against a
  simulated deployment (host-ID enumeration, LB-type inference,
  migration survival);
* ``stats``    — pretty-print a metrics snapshot written by ``--metrics``.

``simulate``/``classify``/``analyze``/``probe`` all accept ``--trace
FILE.qlog.jsonl`` (structured event stream, one JSON object per line) and
``--metrics FILE.json`` (counter/gauge/histogram/timer snapshot).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.packet_mix import TABLE3_ROWS, packet_mix, top_length_signatures
from repro.core.report import render_histogram, render_table
from repro.core.scid_stats import table4
from repro.core.summary import HYPERGIANT_COLUMNS, summarize
from repro.core.timing import timing_profiles
from repro.core.versions import TABLE2_ROWS, table2
from repro.inetdata.asdb import AsDatabase, AsEntry
from repro.netstack.pcap import read_pcap
from repro.obs import JsonlTracer, MetricsRegistry, Observability, load_snapshot
from repro.telescope.acknowledged import AcknowledgedScanners
from repro.telescope.classify import ClassifiedCapture, classify_capture
from repro.workloads.scenario import (
    RESEARCH_NETWORKS,
    ScenarioConfig,
    april_2021_config,
    build_scenario,
)

ORIGINS = ("Cloudflare", "Facebook", "Google", "Remaining")


# ---------------------------------------------------------------------------
# Observability plumbing
# ---------------------------------------------------------------------------


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a qlog-style JSONL event trace to FILE",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write a metrics snapshot (counters/histograms/timers) to FILE",
    )


def _make_obs(args: argparse.Namespace, force_metrics: bool = False) -> Observability:
    """Build the Observability bundle the command threads through the stack.

    ``force_metrics`` attaches a registry even without ``--metrics`` (used
    by ``classify --json``, whose output embeds the snapshot).
    """
    tracer = JsonlTracer.to_path(args.trace) if getattr(args, "trace", None) else None
    wants_metrics = force_metrics or getattr(args, "metrics", None)
    metrics = MetricsRegistry() if wants_metrics else None
    return Observability(tracer=tracer, metrics=metrics)


def _finish_obs(args: argparse.Namespace, obs: Observability) -> None:
    """Flush the trace sink and persist the metrics snapshot, if requested."""
    obs.close()
    if getattr(args, "metrics", None) and obs.metrics is not None:
        obs.metrics.write(args.metrics)


def _default_asdb() -> AsDatabase:
    from repro.workloads.scenario import ISP_NETWORKS

    asdb = AsDatabase.with_hypergiants()
    for asn, name, prefix in ISP_NETWORKS:
        asdb.register(prefix, AsEntry(asn, name, category="isp"))
    return asdb


def _default_acknowledged() -> AcknowledgedScanners:
    scanners = AcknowledgedScanners()
    for prefix, name in RESEARCH_NETWORKS:
        scanners.register(prefix, name)
    return scanners


def _load_capture(path: str, obs: Observability | None = None) -> ClassifiedCapture:
    obs = obs or Observability()
    if obs.metrics is not None:
        with obs.metrics.time_block("read_pcap"):
            records = read_pcap(path)
        with obs.metrics.time_block("classify"):
            return classify_capture(
                records,
                asdb=_default_asdb(),
                acknowledged=_default_acknowledged(),
                obs=obs,
            )
    records = read_pcap(path)
    return classify_capture(
        records, asdb=_default_asdb(), acknowledged=_default_acknowledged(), obs=obs
    )


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def cmd_simulate(args: argparse.Namespace) -> int:
    config = (
        april_2021_config(seed=args.seed)
        if args.year == 2021
        else ScenarioConfig(seed=args.seed)
    )
    config = config.scaled(args.scale)
    print("Simulating %d (scale %.2f, seed %d)…" % (args.year, args.scale, args.seed))
    obs = _make_obs(args)
    try:
        if obs.metrics is not None:
            with obs.metrics.time_block("build_scenario"):
                scenario = build_scenario(config, obs=obs)
            with obs.metrics.time_block("simulate"):
                scenario.run()
            with obs.metrics.time_block("write_pcap"):
                with open(args.output, "wb") as fileobj:
                    scenario.telescope.write_pcap(fileobj)
        else:
            scenario = build_scenario(config, obs=obs)
            scenario.run()
            with open(args.output, "wb") as fileobj:
                scenario.telescope.write_pcap(fileobj)
    finally:
        _finish_obs(args, obs)
    print(
        "Wrote %d captured packets to %s"
        % (len(scenario.telescope.records), args.output)
    )
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    obs = _make_obs(args, force_metrics=args.json)
    try:
        capture = _load_capture(args.pcap, obs=obs)
    finally:
        _finish_obs(args, obs)
    stats = capture.stats
    if args.json:
        payload = {
            "pcap": args.pcap,
            "stats": {
                "total_records": stats.total_records,
                "non_udp": stats.non_udp,
                "non_port_443": stats.non_port_443,
                "failed_dissection": stats.failed_dissection,
                "acknowledged_scanner": stats.acknowledged_scanner,
                "backscatter": stats.backscatter,
                "scans": stats.scans,
                "removed": stats.removed,
                "removed_share": stats.removed_share,
            },
            "metrics": obs.metrics.snapshot(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        render_table(
            ["stage", "packets"],
            [
                ["raw records", stats.total_records],
                ["non-UDP", stats.non_udp],
                ["non-443", stats.non_port_443],
                ["failed dissection", stats.failed_dissection],
                ["acknowledged scanners", stats.acknowledged_scanner],
                ["backscatter kept", stats.backscatter],
                ["scans kept", stats.scans],
            ],
            title="Sanitization of %s (removed %.0f%%)"
            % (args.pcap, 100 * stats.removed_share),
        )
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    obs = _make_obs(args)
    try:
        capture = _load_capture(args.pcap, obs=obs)
        if obs.metrics is not None:
            with obs.metrics.time_block("analyze"):
                return _analyze_tables(args, capture)
        return _analyze_tables(args, capture)
    finally:
        _finish_obs(args, obs)


def _analyze_tables(args: argparse.Namespace, capture: ClassifiedCapture) -> int:
    wanted = set(args.tables) if args.tables else {"1", "2", "3", "4"}

    if "1" in wanted:
        summary = summarize(capture.backscatter)
        print(
            render_table(
                ["Feature"] + list(HYPERGIANT_COLUMNS),
                [
                    ["Coalescence"]
                    + [summary[h].coalescence for h in HYPERGIANT_COLUMNS],
                    ["Server-chosen IDs"]
                    + [summary[h].server_chosen_ids for h in HYPERGIANT_COLUMNS],
                    ["Structured SCIDs"]
                    + [summary[h].structured_scids for h in HYPERGIANT_COLUMNS],
                    ["Initial RTO"]
                    + [summary[h].rto_label() for h in HYPERGIANT_COLUMNS],
                    ["# re-transmissions"]
                    + [summary[h].resend_label() for h in HYPERGIANT_COLUMNS],
                ],
                title="Table 1 — deployment configurations",
            )
        )
        print()
    if "2" in wanted:
        shares = table2(capture)
        print(
            render_table(
                ["QUIC version", "Clients [%]", "Servers [%]"],
                [
                    [
                        bucket,
                        "%.1f" % shares["clients"].share(bucket),
                        "%.1f" % shares["servers"].share(bucket),
                    ]
                    for bucket in TABLE2_ROWS
                ],
                title="Table 2 — version adoption",
            )
        )
        print()
    if "3" in wanted:
        mix = packet_mix(capture.backscatter + capture.scans)
        print(
            render_table(
                ["Packet type"] + list(ORIGINS),
                [
                    [cat] + ["%.2f" % mix.share(o, cat) for o in ORIGINS]
                    for cat in TABLE3_ROWS
                ],
                title="Table 3 — packet types per source network [%]",
            )
        )
        print()
    if "4" in wanted:
        stats = table4(capture.backscatter)
        print(
            render_table(
                ["Origin AS", "SCID length", "Unique SCIDs"],
                [
                    [o, stats[o].length_summary(), stats[o].unique_count]
                    for o in ORIGINS
                    if o in stats
                ],
                title="Table 4 — SCID statistics",
            )
        )
        print()
    if "rto" in wanted:
        profiles = timing_profiles(capture.backscatter)
        print(
            render_table(
                ["Origin", "sessions", "initial RTO [s]", "resends"],
                [
                    [
                        o,
                        profiles[o].sessions,
                        "%.2f" % (profiles[o].initial_rto or 0),
                        str(profiles[o].resend_range),
                    ]
                    for o in ORIGINS
                    if o in profiles
                ],
                title="Figure 3/4 — retransmission behaviour",
            )
        )
        print()
    if "lengths" in wanted:
        for origin, entries in top_length_signatures(capture.backscatter).items():
            print(render_histogram(entries, width=30, title=origin))
            print()
    return 0


def cmd_probe(args: argparse.Namespace) -> int:
    from repro.active.prober import Prober
    from repro.workloads.scenario import build_lb_lab

    obs = _make_obs(args)
    lab = build_lb_lab(
        google_hosts=args.hosts,
        facebook_hosts=args.hosts,
        quic_lb_hosts=args.hosts,
        seed=args.seed,
        obs=obs,
    )
    prober = Prober(lab.loop, lab.network)
    try:
        if obs.metrics is not None:
            with obs.metrics.time_block("probe.%s" % args.experiment):
                return _run_probe(args, lab, prober)
        return _run_probe(args, lab, prober)
    finally:
        _finish_obs(args, obs)


def _run_probe(args: argparse.Namespace, lab, prober) -> int:
    from repro.active.lb_inference import classify_lb, follow_up_delay
    from repro.active.migration import migration_probe
    from repro.core.l7lb import convergence_curve

    if args.experiment == "enumerate":
        vip = lab.vips("Facebook")[0]
        ids = prober.enumerate_host_ids(vip, args.handshakes)
        curve = convergence_curve([h for h in ids if h is not None])
        print(
            "Enumerated %d L7LBs behind one VIP in %d handshakes"
            % (curve.total, len(ids))
        )
        for checkpoint in (50, 100, 200, len(ids)):
            if checkpoint <= len(ids):
                print(
                    "  after %5d handshakes: %5.1f%% of host IDs"
                    % (checkpoint, 100 * curve.coverage_at(checkpoint))
                )
    elif args.experiment == "lb-type":
        for name in ("Facebook", "Google"):
            outcome = follow_up_delay(prober, lab.vips(name)[0], max_wait=400.0)
            print(
                "%-9s follow-up succeeded after %6.1f s -> %s"
                % (name, outcome.delay, classify_lb(outcome))
            )
    elif args.experiment == "migration":
        for name in ("Facebook", "Google", "QuicLB"):
            same = migration_probe(prober, lab.vips(name)[0])
            rotated = migration_probe(prober, lab.vips(name)[1], rotate_cid=True)
            print(
                "%-9s same-CID migration: %-9s rotated-CID: %s"
                % (
                    name,
                    "survived" if same.survived else "broken",
                    "survived" if rotated.survived else "broken",
                )
            )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Pretty-print a metrics snapshot written by ``--metrics``."""
    snapshot = load_snapshot(args.metrics_file)
    if not any(
        snapshot.get(section)
        for section in ("timers", "counters", "gauges", "histograms")
    ):
        print("%s: no metrics sections found (not a --metrics snapshot?)"
              % args.metrics_file)
        return 1

    def label_text(names, key):
        if not names:
            return "-"
        values = key.split("|") if key else [""] * len(names)
        return ", ".join("%s=%s" % (n, v) for n, v in zip(names, values))

    timers = snapshot.get("timers", {})
    if timers:
        print(
            render_table(
                ["stage", "seconds", "calls"],
                [
                    [stage, "%.3f" % entry["seconds"], entry["calls"]]
                    for stage, entry in sorted(timers.items())
                ],
                title="Stage timings",
            )
        )
        print()
    for section, kind in (("counters", "Counters"), ("gauges", "Gauges")):
        metrics = snapshot.get(section, {})
        rows = [
            [name, label_text(body["label_names"], key), value]
            for name, body in sorted(metrics.items())
            for key, value in body["values"].items()
        ]
        if rows:
            print(render_table(["metric", "labels", "value"], rows, title=kind))
            print()
    for name, body in sorted(snapshot.get("histograms", {}).items()):
        for key, series in body["values"].items():
            title = name
            labels = label_text(body["label_names"], key)
            if labels != "-":
                title += " {%s}" % labels
            print(
                render_histogram(
                    list(zip(body["buckets"], series["counts"])),
                    width=30,
                    title=title,
                )
            )
            print()
    return 0


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Passive measurement toolchain for QUIC deployments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="simulate a month, write pcap")
    simulate.add_argument("output", help="pcap file to write")
    simulate.add_argument("--year", type=int, choices=(2021, 2022), default=2022)
    simulate.add_argument("--scale", type=float, default=0.25)
    simulate.add_argument("--seed", type=int, default=20220101)
    _add_obs_flags(simulate)
    simulate.set_defaults(func=cmd_simulate)

    classify = sub.add_parser("classify", help="sanitize a pcap, print stats")
    classify.add_argument("pcap")
    classify.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable stats (includes the metrics snapshot)",
    )
    _add_obs_flags(classify)
    classify.set_defaults(func=cmd_classify)

    analyze = sub.add_parser("analyze", help="reproduce tables from a pcap")
    analyze.add_argument("pcap")
    analyze.add_argument(
        "--tables",
        nargs="*",
        choices=("1", "2", "3", "4", "rto", "lengths"),
        help="which outputs to print (default: 1 2 3 4)",
    )
    _add_obs_flags(analyze)
    analyze.set_defaults(func=cmd_analyze)

    probe = sub.add_parser("probe", help="run active experiments against a lab")
    probe.add_argument(
        "experiment", choices=("enumerate", "lb-type", "migration")
    )
    probe.add_argument("--hosts", type=int, default=12)
    probe.add_argument("--handshakes", type=int, default=500)
    probe.add_argument("--seed", type=int, default=7)
    _add_obs_flags(probe)
    probe.set_defaults(func=cmd_probe)

    stats = sub.add_parser("stats", help="pretty-print a --metrics snapshot")
    stats.add_argument("metrics_file", help="metrics JSON written by --metrics")
    stats.set_defaults(func=cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
