"""Cursor-based binary reader/writer used by every codec in the library.

QUIC, IPv4, UDP, pcap, and the TLS mini-stack all serialize through these two
classes so bounds checking and error reporting are uniform.
"""

from __future__ import annotations


class BufferError_(ValueError):
    """Raised when a read runs past the end of the buffer."""


class Reader:
    """Sequential reader over an immutable bytes object."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = bytes(data)
        self.pos = pos

    def __len__(self) -> int:
        return len(self.data)

    @property
    def remaining(self) -> int:
        return len(self.data) - self.pos

    def at_end(self) -> bool:
        return self.pos >= len(self.data)

    def peek(self, count: int = 1) -> bytes:
        """Return the next ``count`` bytes without advancing."""
        self._check(count)
        return self.data[self.pos : self.pos + count]

    def read(self, count: int) -> bytes:
        self._check(count)
        out = self.data[self.pos : self.pos + count]
        self.pos += count
        return out

    def read_uint(self, width: int) -> int:
        """Read a big-endian unsigned integer of ``width`` bytes."""
        return int.from_bytes(self.read(width), "big")

    def read_u8(self) -> int:
        return self.read_uint(1)

    def read_u16(self) -> int:
        return self.read_uint(2)

    def read_u32(self) -> int:
        return self.read_uint(4)

    def read_u64(self) -> int:
        return self.read_uint(8)

    def read_rest(self) -> bytes:
        out = self.data[self.pos :]
        self.pos = len(self.data)
        return out

    def skip(self, count: int) -> None:
        self._check(count)
        self.pos += count

    def _check(self, count: int) -> None:
        if count < 0:
            raise BufferError_("negative read of %d bytes" % count)
        if self.pos + count > len(self.data):
            raise BufferError_(
                "read of %d bytes at offset %d overruns buffer of %d bytes"
                % (count, self.pos, len(self.data))
            )


class Writer:
    """Appends big-endian fields into a growing bytearray."""

    __slots__ = ("buf",)

    def __init__(self) -> None:
        self.buf = bytearray()

    def __len__(self) -> int:
        return len(self.buf)

    def write(self, data: bytes) -> "Writer":
        self.buf.extend(data)
        return self

    def write_uint(self, value: int, width: int) -> "Writer":
        if value < 0:
            raise ValueError("cannot encode negative integer %d" % value)
        if value >> (8 * width):
            raise ValueError("%d does not fit in %d bytes" % (value, width))
        self.buf.extend(value.to_bytes(width, "big"))
        return self

    def write_u8(self, value: int) -> "Writer":
        return self.write_uint(value, 1)

    def write_u16(self, value: int) -> "Writer":
        return self.write_uint(value, 2)

    def write_u32(self, value: int) -> "Writer":
        return self.write_uint(value, 4)

    def write_u64(self, value: int) -> "Writer":
        return self.write_uint(value, 8)

    def getvalue(self) -> bytes:
        return bytes(self.buf)


def hexdump(data: bytes, width: int = 16) -> str:
    """Render ``data`` as a classic offset/hex/ascii dump (debugging aid)."""
    lines = []
    for offset in range(0, len(data), width):
        chunk = data[offset : offset + width]
        hexpart = " ".join("%02x" % b for b in chunk)
        asciipart = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append("%08x  %-*s  %s" % (offset, width * 3 - 1, hexpart, asciipart))
    return "\n".join(lines)
