"""Streaming ingestion of a growing pcap capture.

:class:`PcapFollower` is the live twin of
:func:`repro.capstore.load_or_build`: it polls a capture that another
process is still appending to, dissects only the records completed
since the previous poll (``scan_pcap_tail`` finds the torn-record
boundary, so a mid-append writer is never misread), and appends the
rows into one persistent :class:`~repro.capstore.CaptureTable`.  The
first poll seeds from the ``.capidx`` sidecar when one covers a valid
prefix — a ``repro live`` attached to an already-indexed capture starts
where the index ends instead of re-dissecting from byte zero — and
:meth:`PcapFollower.finish` persists the accumulated table back as the
sidecar, so the follow itself warms the batch plane's cache.

Because rows are append-only and classification is stateless per
record, the table a follower holds after consuming the whole file is
*equal* to the table one batch pass would build — the property the
``repro live`` final render and ``benchmarks/bench_stream.py`` assert.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional

from repro.capstore.build import (
    build_from_records,
    default_acknowledged,
    default_asdb,
)
from repro.capstore.cache import (
    DEFAULT_PIPELINE,
    load_or_build_ex,
    prefix_fingerprint,
    sidecar_path,
)
from repro.capstore.format import dump_index
from repro.capstore.table import CaptureTable, ClassifiedView
from repro.core.report import render_table
from repro.core.versions import TABLE2_ROWS
from repro.netstack.pcap import (
    GLOBAL_HEADER_SIZE,
    iter_pcap_range,
    scan_pcap_tail,
)
from repro.obs import NULL_OBS, Observability
from repro.telescope.classify import SanitizationStats


class PcapFollower:
    """Poll one growing pcap, appending new rows into a live table.

    The follower tolerates every state a capture-in-progress can be in:
    not created yet, shorter than the global header, ending in a torn
    record (all three: wait), or *shrunk* — a fresh run reusing the
    path — which resets the table and re-seeds (:attr:`resets` counts
    these so consumers know their fed-row cursors are void).  An
    in-place rewrite at equal-or-larger size is indistinguishable from
    growth without re-hashing the prefix every poll, so live mode
    detects rewrites only via shrinkage; the final batch-parity render
    in ``repro live`` re-validates everything.
    """

    def __init__(
        self,
        path: str,
        validate_crypto_scans: bool = True,
        obs: Optional[Observability] = None,
        use_cache: bool = True,
    ) -> None:
        self.path = path
        self.validate_crypto_scans = validate_crypto_scans
        self.obs = obs or NULL_OBS
        self.use_cache = use_cache
        self.table: Optional[CaptureTable] = None
        self.stats: Optional[SanitizationStats] = None
        #: Byte offset one past the last complete record absorbed.
        self.offset = 0
        self.resets = 0
        self.polls = 0
        self._asdb = default_asdb()
        self._acknowledged = default_acknowledged()

    @property
    def started(self) -> bool:
        return self.table is not None

    @property
    def num_rows(self) -> int:
        return self.table.num_rows if self.table is not None else 0

    def view(self) -> ClassifiedView:
        """The capture as the analysis plane sees it (requires started)."""
        return ClassifiedView(self.table, self.stats)

    def poll(self) -> int:
        """Absorb newly completed records; returns the rows appended."""
        self.polls += 1
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return 0  # not created yet (or deleted): keep waiting
        if self.table is not None and size < self.offset:
            self._reset()
        if self.table is None:
            return self._seed(size)
        if size <= self.offset:
            return 0
        tail_offsets, end = scan_pcap_tail(self.path, start=self.offset)
        if not tail_offsets:
            return 0  # grew, but no record completed yet
        before = self.table.num_rows
        build_from_records(
            iter_pcap_range(self.path, tail_offsets[0], len(tail_offsets)),
            asdb=self._asdb,
            acknowledged=self._acknowledged,
            validate_crypto_scans=self.validate_crypto_scans,
            obs=self.obs,
            table=self.table,
            stats=self.stats,
        )
        self.offset = end
        return self.table.num_rows - before

    def _seed(self, size: int) -> int:
        if size < GLOBAL_HEADER_SIZE:
            return 0  # the global header itself is still being written
        if self.use_cache:
            result = load_or_build_ex(
                self.path,
                obs=self.obs,
                validate_crypto_scans=self.validate_crypto_scans,
            )
            self.table = result.view.table
            self.stats = result.view.stats
            self.offset = result.indexed_bytes
            return self.table.num_rows
        offsets, end = scan_pcap_tail(self.path)
        self.table = CaptureTable()
        self.stats = SanitizationStats()
        if offsets:
            build_from_records(
                iter_pcap_range(self.path, offsets[0], len(offsets)),
                asdb=self._asdb,
                acknowledged=self._acknowledged,
                validate_crypto_scans=self.validate_crypto_scans,
                obs=self.obs,
                table=self.table,
                stats=self.stats,
            )
        self.offset = end
        return self.table.num_rows

    def _reset(self) -> None:
        self.table = None
        self.stats = None
        self.offset = 0
        self.resets += 1

    def finish(self) -> None:
        """Persist the accumulated table as the pcap's ``.capidx`` sidecar.

        The stored fingerprint covers exactly the prefix this follower
        absorbed, so a later batch ``repro analyze`` hits (or extends)
        the index the live session already paid for.  Failure to write
        (read-only directory) downgrades to a warning.
        """
        if not self.use_cache or self.table is None:
            return
        pipeline = dict(DEFAULT_PIPELINE)
        pipeline["validate_crypto_scans"] = self.validate_crypto_scans
        index_path = sidecar_path(self.path)
        try:
            dump_index(
                index_path,
                self.table,
                self.stats,
                source=prefix_fingerprint(
                    self.path, self.offset, records=self.stats.total_records
                ),
                pipeline=pipeline,
            )
        except OSError as exc:
            print(
                "warning: could not write %s: %s" % (index_path, exc),
                file=sys.stderr,
            )


def render_dashboard(
    followers: List[PcapFollower], analyses, polls: int
) -> str:
    """The ``repro live`` refresh: follower states plus reducer headline.

    ``analyses`` is a :class:`~repro.stream.reducers.StreamAnalyses`;
    only its :meth:`snapshot` is used, so tests can pass a stub.
    """
    snap = analyses.snapshot()
    parts: List[str] = []
    parts.append(
        render_table(
            ["capture", "state", "rows", "bytes", "resets"],
            [
                [
                    os.path.basename(follower.path) or follower.path,
                    "live" if follower.started else "waiting",
                    follower.num_rows,
                    follower.offset,
                    follower.resets,
                ]
                for follower in followers
            ],
            title="repro live — poll %d, %d rows fed" % (polls, snap["rows_fed"]),
        )
    )
    parts.append("")
    sessions = snap["sessions"]
    parts.append(
        render_table(
            ["QUIC version", "client sessions", "server sessions"],
            [
                [
                    bucket,
                    sessions["clients"]["buckets"].get(bucket, 0),
                    sessions["servers"]["buckets"].get(bucket, 0),
                ]
                for bucket in TABLE2_ROWS
            ]
            + [
                [
                    "total",
                    sessions["clients"]["total"],
                    sessions["servers"]["total"],
                ]
            ],
            title="Version mix (online)",
        )
    )
    parts.append("")
    origin_rows = []
    for origin in sorted(
        set(snap["packet_mix"]) | set(snap["scids"]) | set(snap["rows_per_sec"])
    ):
        mix = snap["packet_mix"].get(origin, {})
        total = sum(mix.values())
        coalesced = mix.get("Coalesced Initial & Handshake", 0)
        scids = snap["scids"].get(origin)
        origin_rows.append(
            [
                origin,
                total,
                "%.1f%%" % (100.0 * coalesced / total) if total else "-",
                scids["unique"] if scids else 0,
                scids["dominant_length"] or "-" if scids else "-",
                ("yes" if scids["structured"] else "no") if scids else "-",
                "%.1f" % snap["rows_per_sec"].get(origin, 0.0),
            ]
        )
    parts.append(
        render_table(
            [
                "origin",
                "datagrams",
                "coalesced",
                "SCIDs",
                "dom len",
                "structured",
                "rows/s",
            ],
            origin_rows,
            title="Per-origin mix (online)",
        )
    )
    parts.append("")
    offnet = snap["offnet"]
    parts.append(
        "rows: %d backscatter / %d scans | off-net servers: %d "
        "(low host-ID: %d) | capture span: %.1f s"
        % (
            snap["rows"].get("backscatter", 0),
            snap["rows"].get("scan", 0),
            offnet["servers"],
            offnet["low_host_id"],
            snap["span_seconds"],
        )
    )
    return "\n".join(parts)
