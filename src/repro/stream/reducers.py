"""Windowed online versions of the core analyses.

:class:`StreamAnalyses` consumes :class:`~repro.capstore.CaptureTable`
row batches as they are appended by a live follower and keeps the
paper's headline numbers continuously up to date:

* session-deduplicated version mix per side (Table 2),
* datagram-category mix per origin (Table 3),
* unique SCIDs, length distribution and nybble structure per origin
  (Table 4 / Figure 5),
* off-net candidate servers and the low-host-ID share (Table 6),
* per-origin row rates over the observed capture span.

Each reducer is *incremental over the raw columns* — no
``CapturedPacket`` materialization, no re-scan of already-fed rows —
and is defined to agree exactly with its batch counterpart in
``repro.core`` when fed the rows of one table in order (asserted by
``tests/stream/test_reducers.py``).  :meth:`StreamAnalyses.publish`
mirrors the state into ``stream.*`` gauges so ``--prom-file`` /
``--prom-port`` export the live numbers.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Set, Tuple

from repro.capstore.table import CaptureTable
from repro.core.offnet import LOW_HOST_ID_LIMIT
from repro.core.scid_entropy import (
    NybbleMatrix,
    chi_square_uniformity,
    is_structured,
)
from repro.core.versions import TABLE2_ROWS
from repro.quic.cid import mvfst
from repro.quic.packet import PacketType
from repro.quic.version import table2_bucket

_INITIAL = PacketType.INITIAL.value
_HANDSHAKE = PacketType.HANDSHAKE.value
_RETRY = PacketType.RETRY.value
_VN = PacketType.VERSION_NEGOTIATION.value

#: Single-packet datagram categories by packet-type code (Table 3).
_SINGLE_CATEGORY = {
    _INITIAL: "Initial",
    _HANDSHAKE: "Handshake",
    PacketType.ZERO_RTT.value: "0-RTT",
    _RETRY: "Retry",
    _VN: "Version Negotiation",
}
_COALESCABLE = frozenset((_INITIAL, _HANDSHAKE))

#: Hypergiant origins excluded from off-net detection (they are the
#: on-net deployments the off-net caches are measured against).
OFFNET_EXCLUDED = frozenset(("Facebook", "Google", "Cloudflare"))


class ScidAccumulator:
    """Unique SCIDs of one origin with incremental nybble statistics.

    Mirrors :func:`repro.core.scid_entropy.nybble_matrix` over the
    running set: per-position value counts are bumped only when a SCID
    is seen for the first time, so :meth:`matrix` is O(positions) to
    render instead of O(unique SCIDs) to recompute.
    """

    __slots__ = ("scids", "lengths", "_counts", "_totals")

    def __init__(self) -> None:
        self.scids: Set[bytes] = set()
        self.lengths: Counter = Counter()
        self._counts: List[List[int]] = []
        self._totals: List[int] = []

    def add(self, scid: bytes) -> bool:
        """Absorb one SCID; returns True when it was new."""
        if scid in self.scids:
            return False
        self.scids.add(scid)
        self.lengths[len(scid)] += 1
        positions = len(scid) * 2
        while len(self._counts) < positions:
            self._counts.append([0] * 16)
            self._totals.append(0)
        position = 0
        for byte in scid:
            self._counts[position][byte >> 4] += 1
            self._totals[position] += 1
            position += 1
            self._counts[position][byte & 0x0F] += 1
            self._totals[position] += 1
            position += 1
        return True

    @property
    def unique_count(self) -> int:
        return len(self.scids)

    @property
    def dominant_length(self) -> Optional[int]:
        if not self.lengths:
            return None
        return self.lengths.most_common(1)[0][0]

    def matrix(self) -> NybbleMatrix:
        """The Figure 5 frequency matrix of the SCIDs seen so far."""
        freq = [
            [c / total if total else 0.0 for c in row]
            for row, total in zip(self._counts, self._totals)
        ]
        return NybbleMatrix(
            freq=freq,
            sample_size=len(self.scids),
            position_totals=list(self._totals),
        )


class _OffnetServer:
    """Minimal per-source-IP state for the low-host-ID off-net test."""

    __slots__ = ("has_scid", "ok")

    def __init__(self) -> None:
        self.has_scid = False
        self.ok = True  # AND over per-SCID verdicts; vacuous until has_scid


class StreamAnalyses:
    """Online reducers over capture rows; feed batches, read anytime."""

    def __init__(self) -> None:
        #: Rows per packet class ("backscatter" / "scan").
        self.rows: Counter = Counter()
        self.rows_by_origin: Counter = Counter()
        self.rows_fed = 0
        # Session version mix, indexed by klass code (0=backscatter →
        # servers side, 1=scan → clients side).
        self._session_keys: Tuple[set, set] = (set(), set())
        self.session_buckets: Tuple[Counter, Counter] = (Counter(), Counter())
        #: origin → Counter(datagram category), VN excluded (Table 3).
        self.packet_mix: Dict[str, Counter] = {}
        #: origin → ScidAccumulator (backscatter SCIDs, Table 4).
        self.scids: Dict[str, ScidAccumulator] = {}
        self._offnet: Dict[int, _OffnetServer] = {}
        self._scid_verdict: Dict[bytes, bool] = {}
        self.ts_min: Optional[float] = None
        self.ts_max: Optional[float] = None

    # -- ingestion -------------------------------------------------------

    def feed(self, table: CaptureTable, start: int, end: int) -> int:
        """Absorb rows ``[start, end)`` of ``table``; returns rows fed.

        Rows must be fed exactly once and in table order (the follower's
        append-only cursor guarantees both); the reducers then agree
        with their batch counterparts at every prefix.
        """
        pkt_start = table.pkt_start
        bytes_start = table.bytes_start
        dcid_len = table.dcid_len
        scid_len = table.scid_len
        pkt_type = table.pkt_type
        pkt_version = table.pkt_version
        blob = table.blob
        klass = table.klass
        origin_id = table.origin_id
        origins = table.origins
        ts = table.ts
        src_ip = table.src_ip
        dst_ip = table.dst_ip

        for row in range(start, end):
            k = klass[row]
            origin = origins[origin_id[row]]
            j0 = pkt_start[row]
            j1 = pkt_start[row + 1]
            stamp = ts[row]
            if self.ts_min is None or stamp < self.ts_min:
                self.ts_min = stamp
            if self.ts_max is None or stamp > self.ts_max:
                self.ts_max = stamp
            self.rows["backscatter" if k == 0 else "scan"] += 1
            self.rows_by_origin[origin] += 1

            # First packet's connection IDs (the session identity).
            cursor = bytes_start[j0]
            dcid_end = cursor + dcid_len[j0]
            scid_end = dcid_end + scid_len[j0]
            first_dcid = bytes(blob[cursor:dcid_end])
            first_scid = bytes(blob[dcid_end:scid_end])

            # Table 2: one session per (src, dst, SCID, DCID), bucketed
            # by the version of its first observed datagram.
            key = (src_ip[row], dst_ip[row], first_scid, first_dcid)
            keys = self._session_keys[k]
            if key not in keys:
                keys.add(key)
                self.session_buckets[k][table2_bucket(pkt_version[j0])] += 1

            # Table 3 datagram category (VN excluded, like packet_mix).
            if j1 - j0 > 1:
                kinds = {pkt_type[j] for j in range(j0, j1)}
                category = (
                    "Coalesced Initial & Handshake"
                    if kinds <= _COALESCABLE
                    else "Coalesced other"
                )
            else:
                category = _SINGLE_CATEGORY.get(pkt_type[j0], "1-RTT")
            if category != "Version Negotiation":
                mix = self.packet_mix.get(origin)
                if mix is None:
                    mix = self.packet_mix[origin] = Counter()
                mix[category] += 1

            if k != 0:
                continue  # SCID/off-net features come from backscatter only

            # Table 4: unique server CIDs from Initial/Handshake/Retry.
            accumulator = None
            for j in range(j0, j1):
                if scid_len[j] and pkt_type[j] in (_INITIAL, _HANDSHAKE, _RETRY):
                    if accumulator is None:
                        accumulator = self.scids.get(origin)
                        if accumulator is None:
                            accumulator = self.scids[origin] = ScidAccumulator()
                    cj = bytes_start[j] + dcid_len[j]
                    accumulator.add(bytes(blob[cj : cj + scid_len[j]]))

            # Table 6: off-net candidates outside the hypergiants.  VN
            # SCIDs echo the client's DCID, so VN-first rows are skipped
            # (mirrors ``offnet.extract_features``).
            if origin in OFFNET_EXCLUDED or pkt_type[j0] == _VN:
                continue
            server = self._offnet.get(src_ip[row])
            if server is None:
                server = self._offnet[src_ip[row]] = _OffnetServer()
            for j in range(j0, j1):
                if scid_len[j]:
                    cj = bytes_start[j] + dcid_len[j]
                    scid = bytes(blob[cj : cj + scid_len[j]])
                    server.has_scid = True
                    if server.ok:
                        server.ok = self._low_host_verdict(scid)
        self.rows_fed += end - start
        return end - start

    def _low_host_verdict(self, scid: bytes) -> bool:
        """Does one SCID pass the mvfst-v1 low-host-ID test?  (Cached.)"""
        verdict = self._scid_verdict.get(scid)
        if verdict is None:
            decoded = mvfst.try_decode(scid)
            verdict = (
                decoded is not None
                and decoded.version == 1
                and decoded.host_id < LOW_HOST_ID_LIMIT
            )
            self._scid_verdict[scid] = verdict
        return verdict

    # -- reading ---------------------------------------------------------

    def matrix(self, origin: str) -> NybbleMatrix:
        accumulator = self.scids.get(origin)
        if accumulator is None:
            return NybbleMatrix(freq=[], sample_size=0)
        return accumulator.matrix()

    def offnet_counts(self) -> Tuple[int, int]:
        """(candidate servers, servers passing the low-host-ID test)."""
        low = sum(
            1 for server in self._offnet.values() if server.has_scid and server.ok
        )
        return len(self._offnet), low

    @property
    def span_seconds(self) -> float:
        if self.ts_min is None or self.ts_max is None:
            return 0.0
        return self.ts_max - self.ts_min

    def snapshot(self) -> dict:
        """Plain-data view of every reducer (dashboard and test surface)."""
        span = self.span_seconds
        sessions = {}
        for code, side in ((1, "clients"), (0, "servers")):
            sessions[side] = {
                "total": len(self._session_keys[code]),
                "buckets": dict(self.session_buckets[code]),
            }
        scids = {}
        for origin, accumulator in self.scids.items():
            matrix = accumulator.matrix()
            scids[origin] = {
                "unique": accumulator.unique_count,
                "lengths": dict(accumulator.lengths),
                "dominant_length": accumulator.dominant_length,
                "structured": is_structured(matrix),
                "max_chi2": max(chi_square_uniformity(matrix), default=0.0),
            }
        servers, low = self.offnet_counts()
        return {
            "rows": dict(self.rows),
            "rows_fed": self.rows_fed,
            "sessions": sessions,
            "packet_mix": {
                origin: dict(counter) for origin, counter in self.packet_mix.items()
            },
            "scids": scids,
            "offnet": {"servers": servers, "low_host_id": low},
            "span_seconds": span,
            "rows_per_sec": {
                origin: count / span if span > 0 else 0.0
                for origin, count in self.rows_by_origin.items()
            },
        }

    def publish(self, metrics) -> None:
        """Mirror the current state into ``stream.*`` gauges.

        Gauges (not counters) because reducers hold absolute running
        values; re-publishing after every batch keeps the Prometheus
        view exactly in step with the dashboard.
        """
        if metrics is None:
            return
        rows = metrics.gauge("stream.rows", ("klass",))
        for name, value in self.rows.items():
            rows.set_key((name,), value)
        metrics.gauge("stream.rows_fed").set_key((), self.rows_fed)
        sessions = metrics.gauge("stream.sessions", ("side", "bucket"))
        for code, side in ((1, "clients"), (0, "servers")):
            sessions.set_key((side, "total"), len(self._session_keys[code]))
            for bucket in TABLE2_ROWS:
                count = self.session_buckets[code].get(bucket, 0)
                if count:
                    sessions.set_key((side, bucket), count)
        mix = metrics.gauge("stream.packet_mix", ("origin", "category"))
        for origin, counter in self.packet_mix.items():
            for category, count in counter.items():
                mix.set_key((origin, category), count)
        unique = metrics.gauge("stream.scid_unique", ("origin",))
        dominant = metrics.gauge("stream.scid_dominant_len", ("origin",))
        structured = metrics.gauge("stream.scid_structured", ("origin",))
        chi2 = metrics.gauge("stream.scid_max_chi2", ("origin",))
        for origin, accumulator in self.scids.items():
            unique.set_key((origin,), accumulator.unique_count)
            dominant.set_key((origin,), accumulator.dominant_length or 0)
            matrix = accumulator.matrix()
            structured.set_key((origin,), 1 if is_structured(matrix) else 0)
            chi2.set_key(
                (origin,), max(chi_square_uniformity(matrix), default=0.0)
            )
        servers, low = self.offnet_counts()
        metrics.gauge("stream.offnet_servers").set_key((), servers)
        metrics.gauge("stream.offnet_low_host_id").set_key((), low)
        span = self.span_seconds
        metrics.gauge("stream.span_seconds").set_key((), span)
        rate = metrics.gauge("stream.rows_per_sec", ("origin",))
        for origin, count in self.rows_by_origin.items():
            rate.set_key((origin,), count / span if span > 0 else 0.0)
