"""Follow-a-file primitives for the streaming plane.

Two shapes of growing file appear in this toolchain: append-only JSONL
streams (``--trace`` event logs, one JSON object per line) and
atomically-replaced snapshot documents (``--metrics`` JSON, heartbeat
files).  Both get a small stateful follower here:

* :class:`JsonlTail` — byte-offset tailing with partial-line buffering,
  so a poll that lands mid-line never yields a torn record; a truncated
  file (log rotation, a fresh run reusing the path) resets the cursor
  and keeps following.
* :class:`SnapshotTail` — change detection by ``(mtime_ns, size)`` stamp
  plus a whole-document re-read, tolerating the moment between a
  writer's truncate and its rewrite.

Neither follower ever raises on filesystem races (file missing, shrunk,
mid-write): the next poll simply returns nothing, exactly like a
``tail -f`` that outlives its target.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional


class JsonlTail:
    """Incremental reader of an append-only JSONL file.

    Each :meth:`poll` returns the complete JSON objects appended since
    the previous poll.  A trailing partial line — a writer caught
    mid-``write`` — is buffered and completed on a later poll, so
    records are never torn.  Lines that fail to parse (or parse to a
    non-object) are counted in :attr:`bad_lines` and skipped; a file
    that shrank is treated as rotated: the cursor resets to the start
    and :attr:`resets` increments.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.offset = 0
        self.bad_lines = 0
        self.resets = 0
        self._buffer = b""

    def poll(self) -> List[dict]:
        """New complete events since the last poll (empty on no change)."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []  # not created yet, or deleted: keep waiting
        if size < self.offset:
            self.offset = 0
            self._buffer = b""
            self.resets += 1
        if size == self.offset and not self._buffer:
            return []
        try:
            with open(self.path, "rb") as fileobj:
                fileobj.seek(self.offset)
                chunk = fileobj.read()
        except OSError:
            return []
        self.offset += len(chunk)
        lines = (self._buffer + chunk).split(b"\n")
        self._buffer = lines.pop()  # incomplete trailing line (often b"")
        events: List[dict] = []
        for line in lines:
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                self.bad_lines += 1
                continue
            if isinstance(doc, dict):
                events.append(doc)
            else:
                self.bad_lines += 1
        return events


class SnapshotTail:
    """Re-read a whole JSON document whenever its stat stamp changes.

    The followed file is rewritten as a unit (``--metrics`` snapshots
    are small and dumped in one call), so content-level incrementality
    buys nothing; what matters is cheap change detection and surviving
    the window where the writer has truncated but not yet finished.  A
    poll that catches a half-written document parses as invalid JSON,
    returns ``None`` *without* advancing the stamp, and retries on the
    next poll.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._stamp: Optional[tuple] = None

    def poll(self) -> Optional[dict]:
        """The new document, or ``None`` when unchanged/missing/mid-write."""
        try:
            stat = os.stat(self.path)
        except OSError:
            return None
        stamp = (stat.st_mtime_ns, stat.st_size)
        if stamp == self._stamp:
            return None
        try:
            with open(self.path) as fileobj:
                doc = json.load(fileobj)
        except (OSError, ValueError):
            return None  # mid-rewrite: stamp not advanced, retried next poll
        self._stamp = stamp
        return doc if isinstance(doc, dict) else None
