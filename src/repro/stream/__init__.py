"""Streaming analysis plane: watch a measurement while it runs.

The batch plane (``repro.capstore`` → ``repro analyze``) dissects a
finished pcap once and renders the paper's tables; this package is its
live twin.  ``live`` follows a *growing* capture — polling the file,
dissecting only newly completed records, appending into the same
columnar :class:`~repro.capstore.CaptureTable` a batch pass would build
— and ``reducers`` keeps windowed online versions of the core analyses
(version mix, packet-class mix, SCID structure, off-net share, rates)
up to date per row batch, publishing them into a
:class:`~repro.obs.MetricsRegistry` so ``--prom-file``/``--prom-port``
export them while the run is still in flight.  ``tail`` holds the
generic follow-a-file primitives (JSONL traces, snapshot files).

Because the follower appends into a real ``CaptureTable``, a live run
that reaches the end of its input holds *exactly* the table a batch run
would have built — so the final ``repro live`` render is byte-for-byte
the ``repro analyze`` output.
"""

from repro.stream.live import PcapFollower, render_dashboard
from repro.stream.reducers import StreamAnalyses
from repro.stream.tail import JsonlTail, SnapshotTail

__all__ = [
    "JsonlTail",
    "PcapFollower",
    "SnapshotTail",
    "StreamAnalyses",
    "render_dashboard",
]
