"""Per-cell metric evaluation for ``repro.sweep``.

A sweep spec names the metrics to record per grid cell.  Three sources
feed them:

* the classified capture itself (row counts, removal share);
* the ``repro.core`` analyses over the capture (version shares, packet
  mixes, SCID uniqueness, off-net counts);
* the *simulation-time* metrics registry snapshot, persisted per cell as
  ``sim_metrics.json`` so a cache-warm re-run can evaluate registry
  metrics without re-simulating.

Metric grammar (``validate_metric`` enforces it at spec-parse time, long
before any simulation runs):

===========================================  ==================================
name                                         value
===========================================  ==================================
``rows.total``                               sanitized rows in the capture
``rows.backscatter`` / ``rows.scans``        rows per packet class
``records.total``                            raw records before sanitization
``removed_share``                            fraction removed by sanitization
``version_share.<side>.<bucket>``            Table 2 share [%], ``side`` in
                                             clients/servers, ``bucket`` a
                                             ``TABLE2_ROWS`` entry
``packet_share.<origin>.<category>``         Table 3 share [%], ``origin`` a
                                             hypergiant/Remaining, ``category``
                                             a ``TABLE3_ROWS`` entry
``scid_unique.<origin>``                     Table 4 unique SCID count
``offnet.servers`` / ``offnet.low_host_id``  off-net servers seen / with
                                             low-entropy host IDs (Table 6)
``counter:<name>[|<labels>]``                sim-time counter total (or one
                                             ``|``-joined label key)
``gauge:<name>[|<labels>]``                  sim-time gauge value
``timer:<stage>``                            sim-time stage seconds
===========================================  ==================================

Registry metrics that the simulation never touched evaluate to ``0.0``
(a cell with no drops has no ``net.dropped`` counter — that zero is the
data point, not an error).
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.core.offnet import extract_features
from repro.core.packet_mix import TABLE3_ROWS, packet_mix
from repro.core.scid_stats import table4
from repro.core.versions import TABLE2_ROWS, table2

#: The paper's source-network columns (Tables 3/4 and the timing figures).
ORIGINS = ("Cloudflare", "Facebook", "Google", "Remaining")

SIDES = ("clients", "servers")

DEFAULT_METRICS = (
    "rows.total",
    "rows.backscatter",
    "rows.scans",
    "removed_share",
)

_FIXED = {
    "rows.total",
    "rows.backscatter",
    "rows.scans",
    "records.total",
    "removed_share",
    "offnet.servers",
    "offnet.low_host_id",
}

#: Registry-snapshot prefixes: the name after the colon is free-form.
_REGISTRY_PREFIXES = ("counter:", "gauge:", "timer:")


def validate_metric(name: str) -> None:
    """Raise ``ValueError`` for a metric name the evaluator cannot serve."""
    if not isinstance(name, str) or not name:
        raise ValueError("metric names must be non-empty strings (got %r)" % (name,))
    if name in _FIXED:
        return
    for prefix in _REGISTRY_PREFIXES:
        if name.startswith(prefix):
            if not name[len(prefix):]:
                raise ValueError("metric %r names no registry metric" % name)
            return
    parts = name.split(".", 2)
    if parts[0] == "version_share":
        if len(parts) == 3 and parts[1] in SIDES and parts[2] in TABLE2_ROWS:
            return
        raise ValueError(
            "metric %r: expected version_share.<clients|servers>.<bucket> "
            "with bucket one of %s" % (name, ", ".join(TABLE2_ROWS))
        )
    if parts[0] == "packet_share":
        if len(parts) == 3 and parts[1] in ORIGINS and parts[2] in TABLE3_ROWS:
            return
        raise ValueError(
            "metric %r: expected packet_share.<origin>.<category> with "
            "origin one of %s and category one of %s"
            % (name, ", ".join(ORIGINS), ", ".join(TABLE3_ROWS))
        )
    if parts[0] == "scid_unique":
        if len(parts) == 2 and parts[1] in ORIGINS:
            return
        raise ValueError(
            "metric %r: expected scid_unique.<origin> with origin one of %s"
            % (name, ", ".join(ORIGINS))
        )
    raise ValueError(
        "unknown metric %r (see repro.sweep.metrics for the grammar)" % name
    )


def _from_snapshot(name: str, snapshot: dict) -> float:
    """Resolve a ``counter:``/``gauge:``/``timer:`` metric from a snapshot."""
    kind, _, rest = name.partition(":")
    if kind == "timer":
        return float(snapshot.get("timers", {}).get(rest, {}).get("seconds", 0.0))
    metric_name, _, key = rest.partition("|")
    body = snapshot.get(kind + "s", {}).get(metric_name)
    if body is None:
        return 0.0
    values = body.get("values", {})
    if key or not body.get("label_names"):
        return float(values.get(key, 0.0))
    return float(sum(values.values()))


def evaluate_metrics(
    metrics: Iterable[str], view, sim_snapshot: dict
) -> Dict[str, float]:
    """Evaluate every requested metric for one cell.

    ``view`` is the cell's classified capture (a
    :class:`~repro.capstore.table.ClassifiedView`); ``sim_snapshot`` the
    simulation-time registry snapshot (``{}`` when the cell ran without
    metrics).  Expensive analyses run at most once per cell, lazily —
    a spec recording only row counts never touches the dissected packets.
    """
    cache: dict = {}

    def analysis(key, thunk):
        if key not in cache:
            cache[key] = thunk()
        return cache[key]

    out: Dict[str, float] = {}
    for name in metrics:
        if name == "rows.total":
            value = float(len(view))
        elif name == "rows.backscatter":
            value = float(view.stats.backscatter)
        elif name == "rows.scans":
            value = float(view.stats.scans)
        elif name == "records.total":
            value = float(view.stats.total_records)
        elif name == "removed_share":
            value = float(view.stats.removed_share)
        elif name.startswith(_REGISTRY_PREFIXES):
            value = _from_snapshot(name, sim_snapshot)
        elif name.startswith("version_share."):
            _, side, bucket = name.split(".", 2)
            value = float(analysis("table2", lambda: table2(view))[side].share(bucket))
        elif name.startswith("packet_share."):
            _, origin, category = name.split(".", 2)
            mix = analysis(
                "packet_mix", lambda: packet_mix(view.backscatter + view.scans)
            )
            value = float(mix.share(origin, category))
        elif name.startswith("scid_unique."):
            _, origin = name.split(".", 1)
            stats = analysis("table4", lambda: table4(view.backscatter))
            value = float(stats[origin].unique_count) if origin in stats else 0.0
        elif name == "offnet.servers":
            value = float(
                len(analysis("offnet", lambda: extract_features(view.backscatter)))
            )
        elif name == "offnet.low_host_id":
            features = analysis("offnet", lambda: extract_features(view.backscatter))
            value = float(sum(1 for f in features.values() if f.low_host_id()))
        else:  # pragma: no cover - validate_metric guards the spec
            raise ValueError("unknown metric %r" % name)
        out[name] = value
    return out
