"""Terminal heatmaps and status tables for sweep output directories.

``repro sweep render`` pivots the long-form ``results.json`` into a 2-D
grid over two chosen axes; any remaining axes are either pinned with
``--fix axis=value`` or mean-aggregated (with a note saying so, because a
silently averaged axis reads like a lie).  Cells carry a shade glyph
(``·░▒▓█`` by value quintile across the rendered grid) next to the
number, so gradients are visible at a glance in a plain terminal — the
ESA-QUICOPTSAT datarate/latency tables rendered the same way.

``repro sweep status`` renders the manifest: per-cell state plus, while
cells are still pending, the live heartbeat table the workers write.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.core.report import render_table
from repro.obs.progress import read_heartbeats, render_progress
from repro.sweep.runner import MANIFEST_NAME, PROGRESS_DIR, RESULTS_JSON
from repro.sweep.spec import format_value

#: Shade ramp, lowest to highest value quintile.
SHADES = "·░▒▓█"


class RenderError(ValueError):
    """A render request the results file cannot satisfy."""


def load_results(outdir: str) -> dict:
    path = os.path.join(outdir, RESULTS_JSON)
    try:
        with open(path) as fileobj:
            return json.load(fileobj)
    except OSError:
        raise RenderError(
            "%s: no results.json (did `repro sweep run` finish?)" % outdir
        ) from None
    except ValueError as exc:
        raise RenderError("%s: invalid results.json: %s" % (outdir, exc)) from None


def load_manifest(outdir: str) -> dict:
    path = os.path.join(outdir, MANIFEST_NAME)
    try:
        with open(path) as fileobj:
            return json.load(fileobj)
    except OSError:
        raise RenderError(
            "%s: no manifest.json (not a sweep output directory?)" % outdir
        ) from None
    except ValueError as exc:
        raise RenderError("%s: invalid manifest.json: %s" % (outdir, exc)) from None


def _format_number(value: float) -> str:
    return "%.4g" % value


def pivot(
    results: dict,
    metric: str,
    x_axis: str,
    y_axis: str,
    fixed: Optional[Dict[str, str]] = None,
) -> Tuple[List[str], List[str], Dict[Tuple[str, str], float], List[str]]:
    """Reduce the long-form cells to a (y, x) -> value grid.

    Returns ``(x_values, y_values, grid, averaged_axes)`` with axis values
    as their canonical :func:`format_value` text, in spec order.  Cells
    sharing a (y, x) coordinate after pinning — unfixed extra axes — are
    mean-aggregated and the axes responsible are reported.
    """
    axes = results["axes"]
    for axis in (x_axis, y_axis):
        if axis not in axes:
            raise RenderError(
                "unknown axis %r (spec axes: %s)" % (axis, ", ".join(axes))
            )
    if x_axis == y_axis:
        raise RenderError("--x and --y must name different axes")
    if metric not in results["metrics"]:
        raise RenderError(
            "metric %r was not recorded (spec metrics: %s)"
            % (metric, ", ".join(results["metrics"]))
        )
    fixed = fixed or {}
    for axis, value in fixed.items():
        if axis not in axes:
            raise RenderError(
                "cannot fix unknown axis %r (spec axes: %s)"
                % (axis, ", ".join(axes))
            )
        allowed = [format_value(v) for v in axes[axis]]
        if value not in allowed:
            raise RenderError(
                "axis %r has no value %r (values: %s)"
                % (axis, value, ", ".join(allowed))
            )
    sums: Dict[Tuple[str, str], float] = {}
    counts: Dict[Tuple[str, str], int] = {}
    for cell in results["cells"]:
        coords = {axis: format_value(value) for axis, value in cell["coords"]}
        if any(coords.get(axis) != value for axis, value in fixed.items()):
            continue
        key = (coords[y_axis], coords[x_axis])
        sums[key] = sums.get(key, 0.0) + cell["values"][metric]
        counts[key] = counts.get(key, 0) + 1
    grid = {key: sums[key] / counts[key] for key in sums}
    averaged = [
        axis
        for axis in axes
        if axis not in (x_axis, y_axis) and axis not in fixed
    ]
    x_values = [format_value(v) for v in axes[x_axis]]
    y_values = [format_value(v) for v in axes[y_axis]]
    return x_values, y_values, grid, averaged


def _shade(value: float, low: float, high: float) -> str:
    if high <= low:
        return SHADES[-1]
    position = (value - low) / (high - low)
    return SHADES[min(int(position * len(SHADES)), len(SHADES) - 1)]


def render_heatmap(
    results: dict,
    metric: str,
    x_axis: str,
    y_axis: str,
    fixed: Optional[Dict[str, str]] = None,
) -> str:
    """The terminal heatmap: one row per y value, shaded by quintile."""
    x_values, y_values, grid, averaged = pivot(
        results, metric, x_axis, y_axis, fixed
    )
    values = list(grid.values())
    low, high = (min(values), max(values)) if values else (0.0, 0.0)
    rows = []
    for y in y_values:
        row = [y]
        for x in x_values:
            value = grid.get((y, x))
            if value is None:
                row.append("-")
            else:
                row.append("%s %s" % (_shade(value, low, high), _format_number(value)))
        rows.append(row)
    title = "%s — %s by %s (y) x %s (x)" % (
        results["spec"],
        metric,
        y_axis,
        x_axis,
    )
    if fixed:
        title += ", " + ", ".join(
            "%s=%s" % (axis, value) for axis, value in sorted(fixed.items())
        )
    out = render_table(["%s \\ %s" % (y_axis, x_axis)] + x_values, rows, title=title)
    if averaged:
        out += "\n(mean over unfixed axes: %s — pin with --fix axis=value)" % (
            ", ".join(averaged)
        )
    return out


def heatmap_csv(
    results: dict,
    metric: str,
    x_axis: str,
    y_axis: str,
    fixed: Optional[Dict[str, str]] = None,
) -> str:
    """The same pivot as plain CSV, ready for external plotting."""
    x_values, y_values, grid, _averaged = pivot(
        results, metric, x_axis, y_axis, fixed
    )
    lines = [",".join(["%s\\%s" % (y_axis, x_axis)] + x_values)]
    for y in y_values:
        cells = [
            format_value(grid[(y, x)]) if (y, x) in grid else ""
            for x in x_values
        ]
        lines.append(",".join([y] + cells))
    return "\n".join(lines) + "\n"


def render_status(outdir: str) -> str:
    """The manifest's per-cell table, plus live heartbeats while running."""
    manifest = load_manifest(outdir)
    totals = manifest["totals"]
    rows = [
        [
            cell["index"],
            cell["label"],
            cell["status"],
            cell["records"],
            "%.2fs" % cell["wall_seconds"],
            cell["error"] or "-",
        ]
        for cell in manifest["cells"]
    ]
    parts = [
        render_table(
            ["cell", "coordinates", "status", "records", "wall", "error"],
            rows,
            title="Sweep %s: %d cells (%d simulated, %d cached, %d failed, "
            "%d pending)"
            % (
                manifest["spec"]["name"],
                totals["cells"],
                totals["simulated"],
                totals["cached"],
                totals["failed"],
                totals["pending"],
            ),
        )
    ]
    if totals["pending"]:
        beats = read_heartbeats(os.path.join(outdir, PROGRESS_DIR))
        if beats:
            parts.append("")
            parts.append(render_progress(beats))
    return "\n".join(parts)
