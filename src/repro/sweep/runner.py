"""The deterministic grid runner behind ``repro sweep run``.

One sweep is a directory::

    <outdir>/
      manifest.json        # spec echo + per-cell status/wall/records
      results.csv          # long-form: axis columns + metric + value
      results.json         # same data, JSON (axes echoed for `render`)
      progress/            # per-cell heartbeats (repro progress/top)
      cells/<cell_id>/
        capture.pcap       # the cell's simulated month
        capture.pcap.capidx
        cell.json          # resolved coordinates/config, for humans
        sim_metrics.json   # simulation-time registry snapshot

Caching is per cell, two layers deep.  A cell whose ``cell_id`` directory
already holds a matching ``cell.json`` and capture skips simulation
entirely (status ``cached``); its metric evaluation then goes through
:func:`~repro.capstore.cache.load_or_build`, whose ``.capidx`` sidecar
turns the dissection into a column load — so a warm re-run touches no
packet bytes at all, and extending one axis simulates only the cells that
did not exist before.  ``capstore.cache`` hit/miss counters (merged into
the caller's registry) are the observable proof.

Determinism contract: ``results.csv``/``results.json`` are byte-identical
for the same spec regardless of worker count, cache state, or how many
times the sweep ran before — everything nondeterministic (wall times,
cache statuses, pids) lives in ``manifest.json`` instead.  Cells simulate
via :func:`~repro.simnet.shard.run_shard`, whose canonical record order
is already worker-count-independent.

``--workers N`` fans *cells* across a process pool.  Pool workers are
daemonic and cannot fork their own children, which is fine: one cell is
one in-process simulation (the same primitive a ``--workers N`` shard
worker runs), so the pool is the only process layer.
"""

from __future__ import annotations

import csv
import io
import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Callable, List, Optional

from repro.capstore import load_or_build
from repro.obs import NULL_OBS, MetricsRegistry, Observability
from repro.obs.progress import HeartbeatWriter, clean_progress_dir
from repro.obs.trace import CAT_SWEEP
from repro.simnet.shard import _pool_context, run_to_pcap
from repro.sweep.metrics import evaluate_metrics
from repro.sweep.spec import Cell, SweepSpec, format_value

MANIFEST_NAME = "manifest.json"
RESULTS_CSV = "results.csv"
RESULTS_JSON = "results.json"
PROGRESS_DIR = "progress"
CELLS_DIR = "cells"


class SweepRunError(RuntimeError):
    """One or more cells failed; the manifest records which."""


@dataclass
class CellOutcome:
    """What one cell's execution hands back to the sweep parent."""

    index: int
    cell_id: str
    status: str  # "simulated" | "cached" | "failed"
    records: int
    wall_seconds: float
    values: dict  # metric -> float
    snapshot: Optional[dict] = None  # cell-process registry, for merging
    error: str = ""


@dataclass
class SweepResult:
    """What :func:`run_sweep` returns."""

    spec: SweepSpec
    outdir: str
    cells: List[Cell]
    outcomes: List[CellOutcome]
    wall_seconds: float
    csv_path: str = ""
    manifest_path: str = ""

    @property
    def simulated(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "simulated")

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "cached")


def cell_dir(outdir: str, cell: Cell) -> str:
    return os.path.join(outdir, CELLS_DIR, cell.cell_id)


def _cell_is_cached(celldir: str, pcap: str, cell: Cell) -> bool:
    """Does ``celldir`` already hold this exact cell's capture?

    The directory name *is* the hash of the resolved config, so a
    matching ``cell.json`` plus an existing capture means the simulation
    that produced it is the one this spec asks for.
    """
    meta_path = os.path.join(celldir, "cell.json")
    if not (os.path.exists(meta_path) and os.path.exists(pcap)):
        return False
    try:
        with open(meta_path) as fileobj:
            stored = json.load(fileobj)
    except (OSError, ValueError):
        return False
    return stored.get("cell_id") == cell.cell_id


def run_cell(
    cell: Cell,
    metric_names: tuple,
    celldir: str,
    progress_dir: Optional[str] = None,
    force: bool = False,
) -> CellOutcome:
    """Simulate (or reuse) one cell and evaluate its metrics.

    Runs in a pool worker or inline; all observability happens against a
    private registry whose snapshot travels back for the parent to merge
    (the sharded-simulate pushgateway discipline).  Never raises: a
    failing cell reports ``status="failed"`` so its siblings still run
    and the manifest can say which coordinates broke.
    """
    # repro: allow(DET002) -- wall_seconds is a declared nondeterministic
    # fact (manifest.json only; results.csv never sees it)
    start = time.perf_counter()
    registry = MetricsRegistry()
    obs = Observability(metrics=registry)
    heartbeat = (
        HeartbeatWriter(progress_dir, worker=cell.index) if progress_dir else None
    )
    pcap = os.path.join(celldir, "capture.pcap")
    try:
        os.makedirs(celldir, exist_ok=True)
        cached = not force and _cell_is_cached(celldir, pcap, cell)
        if cached:
            with open(os.path.join(celldir, "cell.json")) as fileobj:
                records = int(json.load(fileobj).get("records", 0))
            sim_snapshot = _load_json(os.path.join(celldir, "sim_metrics.json"))
            if heartbeat is not None:
                heartbeat.update("cached", records=records, final=True)
        else:
            sim_registry = MetricsRegistry()
            with registry.time_block("sweep.simulate"):
                records = run_to_pcap(
                    cell.config,
                    pcap,
                    obs=Observability(metrics=sim_registry),
                    heartbeat=heartbeat,
                )
            sim_snapshot = sim_registry.snapshot()
            _dump_json(os.path.join(celldir, "sim_metrics.json"), sim_snapshot)
            _dump_json(
                os.path.join(celldir, "cell.json"),
                {
                    "cell_id": cell.cell_id,
                    "coords": [list(pair) for pair in cell.coords],
                    "records": records,
                    "seed": cell.config.seed,
                    "config": asdict(cell.config),
                },
            )
        view, _hit = load_or_build(pcap, obs=obs)
        with registry.time_block("sweep.evaluate"):
            values = evaluate_metrics(metric_names, view, sim_snapshot)
    except Exception as exc:  # noqa: BLE001 - reported via the manifest
        return CellOutcome(
            index=cell.index,
            cell_id=cell.cell_id,
            status="failed",
            records=0,
            # repro: allow(DET002) -- closes the manifest-only wall interval
            wall_seconds=time.perf_counter() - start,
            values={},
            snapshot=registry.snapshot(),
            error="%s: %s" % (type(exc).__name__, exc),
        )
    finally:
        if heartbeat is not None:
            heartbeat.close()
    return CellOutcome(
        index=cell.index,
        cell_id=cell.cell_id,
        status="cached" if cached else "simulated",
        records=records,
        # repro: allow(DET002) -- closes the manifest-only wall interval
        wall_seconds=time.perf_counter() - start,
        values=values,
        snapshot=registry.snapshot(),
    )


def _cell_main(payload: tuple) -> CellOutcome:
    """Picklable pool entry around :func:`run_cell`."""
    return run_cell(*payload)


def run_sweep(
    spec: SweepSpec,
    outdir: str,
    workers: int = 1,
    force: bool = False,
    obs: Optional[Observability] = None,
    on_cell: Optional[Callable[[Cell, CellOutcome], None]] = None,
) -> SweepResult:
    """Expand ``spec``, run every cell, write manifest + long-form results.

    ``workers > 1`` fans cells across a fork-preferring process pool;
    outcomes are reordered by cell index before anything is written, so
    the results files are byte-identical to a serial run.  ``force``
    re-simulates even cached cells.  ``on_cell`` fires as each outcome
    arrives (pool order), for live CLI reporting.  Raises
    :class:`SweepRunError` after writing the manifest when any cell
    failed — the partial sweep state stays inspectable via
    ``repro sweep status``.
    """
    obs = obs or NULL_OBS
    cells = spec.cells()
    os.makedirs(os.path.join(outdir, CELLS_DIR), exist_ok=True)
    progress_dir = os.path.join(outdir, PROGRESS_DIR)
    clean_progress_dir(progress_dir)
    _write_manifest(outdir, spec, workers, cells, outcomes=None)
    if obs.tracer.enabled:
        obs.tracer.emit(
            CAT_SWEEP,
            "sweep_plan",
            time=0.0,
            name=spec.name,
            cells=len(cells),
            axes={axis: len(values) for axis, values in spec.axes.items()},
            workers=workers,
        )
    cells_by_index = {cell.index: cell for cell in cells}
    payloads = [
        (cell, spec.metrics, cell_dir(outdir, cell), progress_dir, force)
        for cell in cells
    ]
    gauge = obs.metrics.gauge("sweep.cells", ("state",)) if obs.metrics else None
    if gauge is not None:
        gauge.set_key(("total",), len(cells))

    # repro: allow(DET002) -- sweep wall_seconds is reported to the operator
    # and manifest only, never folded into results
    start = time.perf_counter()
    outcomes: List[CellOutcome] = []

    def collect(outcome: CellOutcome) -> None:
        outcomes.append(outcome)
        if gauge is not None:
            gauge.set_key(("done",), len(outcomes))
            gauge.set_key(
                (outcome.status,),
                sum(1 for o in outcomes if o.status == outcome.status),
            )
        if obs.tracer.enabled:
            obs.tracer.emit(
                CAT_SWEEP,
                "cell_done",
                time=0.0,
                cell=outcome.cell_id,
                label=cells_by_index[outcome.index].label,
                status=outcome.status,
                records=outcome.records,
                wall_seconds=round(outcome.wall_seconds, 3),
            )
        if on_cell is not None:
            on_cell(cells_by_index[outcome.index], outcome)

    with obs.span("sweep.run", local=True, cells=len(cells)):
        if workers > 1 and len(cells) > 1:
            ctx = _pool_context()
            with ctx.Pool(processes=min(workers, len(cells))) as pool:
                for outcome in pool.imap_unordered(_cell_main, payloads):
                    collect(outcome)
        else:
            for payload in payloads:
                cell = payload[0]
                with obs.span("sweep.cell", local=True, cell=cell.label):
                    collect(_cell_main(payload))
    # repro: allow(DET002) -- closes the operator-facing wall interval
    wall = time.perf_counter() - start

    outcomes.sort(key=lambda o: o.index)
    if obs.metrics is not None:
        for outcome in outcomes:
            if outcome.snapshot:
                obs.metrics.merge_snapshot(outcome.snapshot)
        obs.metrics.gauge("sweep.wall_seconds").set_key((), wall)
    result = SweepResult(
        spec=spec,
        outdir=outdir,
        cells=cells,
        outcomes=outcomes,
        wall_seconds=wall,
        manifest_path=_write_manifest(outdir, spec, workers, cells, outcomes),
    )
    failed = [o for o in outcomes if o.status == "failed"]
    if failed:
        raise SweepRunError(
            "%d of %d cells failed: %s"
            % (
                len(failed),
                len(cells),
                "; ".join(
                    "%s (%s)" % (cells_by_index[o.index].label, o.error)
                    for o in failed[:5]
                ),
            )
        )
    result.csv_path = _write_results(outdir, spec, cells, outcomes)
    return result


# ---------------------------------------------------------------------------
# Output files
# ---------------------------------------------------------------------------


def _write_manifest(
    outdir: str,
    spec: SweepSpec,
    workers: int,
    cells: List[Cell],
    outcomes: Optional[List[CellOutcome]],
) -> str:
    """The nondeterministic half of the output: statuses, wall times.

    Written twice per run — once up front with every cell ``pending`` (so
    ``repro sweep status`` has something to aggregate mid-run alongside
    the heartbeats) and once at the end with real outcomes.
    """
    by_index = {o.index: o for o in outcomes} if outcomes else {}
    cell_docs = []
    for cell in cells:
        outcome = by_index.get(cell.index)
        cell_docs.append(
            {
                "index": cell.index,
                "cell_id": cell.cell_id,
                "label": cell.label,
                "coords": [list(pair) for pair in cell.coords],
                "seed": cell.config.seed,
                "pcap": os.path.join(CELLS_DIR, cell.cell_id, "capture.pcap"),
                "status": outcome.status if outcome else "pending",
                "records": outcome.records if outcome else 0,
                "wall_seconds": round(outcome.wall_seconds, 3) if outcome else 0.0,
                "error": outcome.error if outcome else "",
            }
        )
    doc = {
        "spec": {
            "name": spec.name,
            "axes": spec.axes,
            "base": spec.base,
            "metrics": list(spec.metrics),
            "seed_mode": spec.seed_mode,
        },
        "workers": workers,
        "cells": cell_docs,
        "totals": {
            "cells": len(cells),
            "simulated": sum(1 for c in cell_docs if c["status"] == "simulated"),
            "cached": sum(1 for c in cell_docs if c["status"] == "cached"),
            "failed": sum(1 for c in cell_docs if c["status"] == "failed"),
            "pending": sum(1 for c in cell_docs if c["status"] == "pending"),
        },
    }
    path = os.path.join(outdir, MANIFEST_NAME)
    _dump_json(path, doc)
    return path


def results_rows(
    spec: SweepSpec, cells: List[Cell], outcomes: List[CellOutcome]
) -> List[List[str]]:
    """Long-form rows: one per (cell, metric), in cell-then-spec order."""
    by_index = {o.index: o for o in outcomes}
    rows = []
    for cell in cells:
        outcome = by_index[cell.index]
        coord_text = [format_value(value) for _axis, value in cell.coords]
        for metric in spec.metrics:
            rows.append(
                coord_text + [metric, format_value(outcome.values[metric])]
            )
    return rows


def _write_results(
    outdir: str, spec: SweepSpec, cells: List[Cell], outcomes: List[CellOutcome]
) -> str:
    """The deterministic half: metric values keyed by cell coordinates.

    Both files are pure functions of (spec, simulated behaviour): no wall
    times, no cache statuses, no absolute paths — re-running the sweep,
    warm or cold, serial or pooled, reproduces them byte for byte.
    """
    header = list(spec.axis_names) + ["metric", "value"]
    rows = results_rows(spec, cells, outcomes)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(header)
    writer.writerows(rows)
    csv_path = os.path.join(outdir, RESULTS_CSV)
    with open(csv_path, "w", newline="") as fileobj:
        fileobj.write(buffer.getvalue())
    by_index = {o.index: o for o in outcomes}
    _dump_json(
        os.path.join(outdir, RESULTS_JSON),
        {
            "spec": spec.name,
            "axes": spec.axes,
            "metrics": list(spec.metrics),
            "cells": [
                {
                    "coords": [list(pair) for pair in cell.coords],
                    "cell_id": cell.cell_id,
                    "values": by_index[cell.index].values,
                }
                for cell in cells
            ],
        },
    )
    return csv_path


def _dump_json(path: str, doc: dict) -> None:
    # Insertion order, not sort_keys: the axes mapping's order is semantic
    # (render defaults lean on it) and construction is already canonical.
    tmp = path + ".%d.tmp" % os.getpid()
    with open(tmp, "w") as fileobj:
        json.dump(doc, fileobj, indent=2)
        fileobj.write("\n")
    os.replace(tmp, path)


def _load_json(path: str) -> dict:
    try:
        with open(path) as fileobj:
            return json.load(fileobj)
    except (OSError, ValueError):
        return {}
