"""Declarative parameter-grid specs for ``repro sweep``.

A spec is a small JSON (or, on Python >= 3.11, TOML) document naming a
grid over scenario knobs::

    {
      "name": "loss-grid",
      "base": {"scale": 0.02},
      "axes": {
        "loss_rate": [0.0, 0.05, 0.2],
        "attack_scale": [0.5, 1.0, 2.0]
      },
      "metrics": ["rows.total", "removed_share"]
    }

``axes`` is an *ordered* mapping of axis name to value list; the grid is
their cartesian product, expanded in spec order (last axis fastest).
``base`` holds shared overrides applied to every cell before its own
coordinates.  Both accept any :class:`~repro.workloads.scenario.
ScenarioConfig` field plus two virtual knobs:

* ``scale`` — uniform traffic-volume factor, applied via
  :meth:`~repro.workloads.scenario.ScenarioConfig.scaled`;
* ``attack_scale`` — attacker-intensity factor, multiplying only the
  ``attacks_*`` volumes (the paper's "how hard is the telescope being
  spoofed at" axis).

Determinism follows the PR 3 seed discipline: in the default
``seed_mode: "derived"`` every cell's scenario seed is
:func:`~repro.workloads.scenario.derive_seed` of the base seed and the
cell's sorted ``axis=value`` coordinate strings — a pure function of the
cell's identity, independent of expansion order, worker count, or which
other cells exist.  ``seed_mode: "shared"`` keeps the base seed
everywhere instead, so cells differ *only* through their knobs (the
right mode when an axis isolates one mechanism and you want common
random numbers across cells).

A cell's identity — and hence its cache directory under the sweep
output — is a hash of its fully *resolved* config, not of the spec text:
re-running a grid with one axis extended re-simulates only the new
cells, and renaming the spec or reordering axes invalidates nothing.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Optional

from repro.sweep.metrics import DEFAULT_METRICS, validate_metric
from repro.workloads.scenario import ScenarioConfig, derive_seed


class SweepSpecError(ValueError):
    """A grid spec that cannot be expanded into cells."""


#: Knobs that are not plain :class:`ScenarioConfig` fields.
VIRTUAL_KNOBS = ("scale", "attack_scale")

SEED_MODES = ("derived", "shared")

_ATTACK_FIELDS = (
    "attacks_facebook",
    "attacks_google",
    "attacks_cloudflare",
    "attacks_offnet",
    "attacks_remaining",
)

_CONFIG_FIELDS = {f.name for f in fields(ScenarioConfig)}


def format_value(value) -> str:
    """Canonical text for an axis value or metric value.

    Floats render via ``repr`` (shortest round-tripping form), so the
    same value always produces the same text — the byte-stability
    contract of ``results.csv`` leans on this.
    """
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _check_knob(key: str, where: str) -> None:
    if key in VIRTUAL_KNOBS or key in _CONFIG_FIELDS:
        return
    raise SweepSpecError(
        "unknown knob %r in %s: expected a ScenarioConfig field or one of %s"
        % (key, where, "/".join(VIRTUAL_KNOBS))
    )


@dataclass(frozen=True)
class Cell:
    """One grid point: coordinates plus the fully resolved scenario."""

    index: int  # position in expansion order (last axis fastest)
    coords: tuple  # ((axis, value), ...) in spec axis order
    config: ScenarioConfig
    cell_id: str  # hash of the resolved config; the cache-directory key

    @property
    def label(self) -> str:
        return ",".join(
            "%s=%s" % (axis, format_value(value)) for axis, value in self.coords
        )


@dataclass
class SweepSpec:
    """A parsed grid spec, ready to expand."""

    name: str
    axes: dict  # ordered axis -> list of values
    base: dict = field(default_factory=dict)
    metrics: tuple = DEFAULT_METRICS
    seed_mode: str = "derived"

    def __post_init__(self) -> None:
        if self.seed_mode not in SEED_MODES:
            raise SweepSpecError(
                "seed_mode must be one of %s (got %r)"
                % ("/".join(SEED_MODES), self.seed_mode)
            )
        for key in self.base:
            _check_knob(key, "base")
        if not isinstance(self.axes, dict):
            raise SweepSpecError("axes must be a mapping of axis -> value list")
        for axis, values in self.axes.items():
            _check_knob(axis, "axes")
            if not isinstance(values, (list, tuple)) or not values:
                raise SweepSpecError(
                    "axis %r needs a non-empty list of values" % axis
                )
            if len(set(map(format_value, values))) != len(values):
                raise SweepSpecError("axis %r has duplicate values" % axis)
        self.metrics = tuple(self.metrics)
        if not self.metrics:
            raise SweepSpecError("metrics must name at least one metric")
        for metric in self.metrics:
            try:
                validate_metric(metric)
            except ValueError as exc:
                raise SweepSpecError(str(exc)) from exc

    @property
    def axis_names(self) -> tuple:
        return tuple(self.axes)

    def resolve_config(self, coords) -> ScenarioConfig:
        """The :class:`ScenarioConfig` a cell at ``coords`` simulates."""
        params = dict(self.base)
        params.update(dict(coords))
        scale = float(params.pop("scale", 1.0))
        attack_scale = float(params.pop("attack_scale", 1.0))
        try:
            config = replace(ScenarioConfig(), **params)
        except TypeError as exc:  # pragma: no cover - guarded by _check_knob
            raise SweepSpecError(str(exc)) from exc
        if scale != 1.0:
            config = config.scaled(scale)
        if attack_scale != 1.0:
            scaled_attacks = {
                name: int(getattr(config, name) * attack_scale)
                for name in _ATTACK_FIELDS
            }
            # Mirror ScenarioConfig.scaled(): the Cloudflare flood never
            # scales to zero (the group must keep one spoofed connection).
            scaled_attacks["attacks_cloudflare"] = max(
                1, scaled_attacks["attacks_cloudflare"]
            )
            config = replace(config, **scaled_attacks)
        if self.seed_mode == "derived":
            parts = [
                "%s=%s" % (axis, format_value(value))
                for axis, value in sorted(coords)
            ]
            config = replace(
                config, seed=derive_seed(config.seed, "sweep-cell", *parts)
            )
        return config

    def cells(self) -> list:
        """Expand the grid (cartesian product, last axis fastest)."""
        names = self.axis_names
        out = []
        for index, values in enumerate(
            itertools.product(*(self.axes[name] for name in names))
        ):
            coords = tuple(zip(names, values))
            config = self.resolve_config(coords)
            out.append(
                Cell(
                    index=index,
                    coords=coords,
                    config=config,
                    cell_id=cell_fingerprint(config),
                )
            )
        return out


def cell_fingerprint(config: ScenarioConfig) -> str:
    """A stable 12-hex-digit id for a fully resolved scenario config.

    Hashing the *resolved* config (all fields, including the derived
    seed) rather than the spec text means cache identity survives spec
    renames, axis reordering, and metric changes — exactly the edits
    that must not force a re-simulation.
    """
    text = json.dumps(asdict(config), sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(text.encode(), digest_size=6).hexdigest()


def spec_from_dict(doc: dict, default_name: str = "sweep") -> SweepSpec:
    """Build a :class:`SweepSpec` from a decoded JSON/TOML document."""
    if not isinstance(doc, dict):
        raise SweepSpecError("spec must be a JSON/TOML object")
    unknown = set(doc) - {"name", "axes", "base", "metrics", "seed_mode"}
    if unknown:
        raise SweepSpecError(
            "unknown spec keys: %s" % ", ".join(sorted(unknown))
        )
    if "axes" not in doc:
        raise SweepSpecError("spec needs an 'axes' mapping")
    return SweepSpec(
        name=str(doc.get("name", default_name)),
        axes=doc["axes"],
        base=dict(doc.get("base", {})),
        metrics=tuple(doc.get("metrics", DEFAULT_METRICS)),
        seed_mode=doc.get("seed_mode", "derived"),
    )


def load_spec(path: str) -> SweepSpec:
    """Parse a spec file; JSON always works, TOML needs Python >= 3.11."""
    try:
        with open(path, "rb") as fileobj:
            data = fileobj.read()
    except OSError as exc:
        raise SweepSpecError("cannot read spec %s: %s" % (path, exc)) from exc
    default_name = os.path.splitext(os.path.basename(path))[0]
    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError:  # Python < 3.11 — tomllib is stdlib-only there
            raise SweepSpecError(
                "TOML specs need Python >= 3.11 (no tomllib); "
                "rewrite %s as JSON" % path
            ) from None
        try:
            doc = tomllib.loads(data.decode())
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
            raise SweepSpecError("invalid TOML in %s: %s" % (path, exc)) from exc
    else:
        try:
            doc = json.loads(data)
        except ValueError as exc:
            raise SweepSpecError("invalid JSON in %s: %s" % (path, exc)) from exc
    return spec_from_dict(doc, default_name=default_name)
