"""``repro.sweep`` — deterministic parameter-grid experiments.

The sweep plane turns the repo's one-off benchmark grids into cached,
reproducible experiments: a declarative spec (:mod:`repro.sweep.spec`)
expands into cells with derived seeds, the runner
(:mod:`repro.sweep.runner`) simulates each cell at most once — per-cell
capture directories plus ``.capidx`` sidecars make warm re-runs touch
only cells that did not exist before — and the metric evaluator
(:mod:`repro.sweep.metrics`) records any registry or ``repro.core``
analysis value into heatmap-ready long-form CSV/JSON
(:mod:`repro.sweep.render` draws them in the terminal).

CLI surface: ``repro sweep run <spec>``, ``repro sweep status <outdir>``,
``repro sweep render <outdir> --metric M --x AXIS --y AXIS``.
"""

from repro.sweep.metrics import (
    DEFAULT_METRICS,
    evaluate_metrics,
    validate_metric,
)
from repro.sweep.render import (
    RenderError,
    heatmap_csv,
    load_manifest,
    load_results,
    render_heatmap,
    render_status,
)
from repro.sweep.runner import (
    CellOutcome,
    SweepResult,
    SweepRunError,
    cell_dir,
    run_cell,
    run_sweep,
)
from repro.sweep.spec import (
    Cell,
    SweepSpec,
    SweepSpecError,
    cell_fingerprint,
    format_value,
    load_spec,
    spec_from_dict,
)

__all__ = [
    "Cell",
    "CellOutcome",
    "DEFAULT_METRICS",
    "RenderError",
    "SweepResult",
    "SweepRunError",
    "SweepSpec",
    "SweepSpecError",
    "cell_dir",
    "cell_fingerprint",
    "evaluate_metrics",
    "format_value",
    "heatmap_csv",
    "load_manifest",
    "load_results",
    "load_spec",
    "render_heatmap",
    "render_status",
    "run_cell",
    "run_sweep",
    "spec_from_dict",
    "validate_metric",
]
