"""Registry of acknowledged research scanners (stand-in for Collins' list).

The paper removes traffic from documented scan projects before analyzing
QUIC versions: acknowledged scanners advertise themselves, scan the whole
telescope, and often use reserved version numbers to force version
negotiation — all of which would bias the "what do real clients run"
question.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.inetdata.radix import RadixTree
from repro.netstack.addr import Prefix


@dataclass(frozen=True)
class ScannerEntry:
    name: str
    organization: str = ""


class AcknowledgedScanners:
    """Prefix list of documented scanning projects."""

    def __init__(self) -> None:
        self._trie: RadixTree[ScannerEntry] = RadixTree()
        self._names: set[str] = set()

    def register(self, prefix: Prefix | str, name: str, organization: str = "") -> None:
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        self._trie.insert(prefix, ScannerEntry(name=name, organization=organization))
        self._names.add(name)

    def lookup(self, address: int) -> ScannerEntry | None:
        return self._trie.lookup(address)

    def is_acknowledged(self, address: int) -> bool:
        return self._trie.lookup(address) is not None

    @property
    def names(self) -> set[str]:
        return set(self._names)

    def __len__(self) -> int:
        return len(self._names)
