"""The network telescope: a darknet device, capture store, and the
classification/sanitization pipeline the paper runs on raw telescope data.
"""

from repro.telescope.darknet import Telescope
from repro.telescope.acknowledged import AcknowledgedScanners
from repro.telescope.classify import (
    ClassifiedCapture,
    PacketClass,
    classify_capture,
)

__all__ = [
    "Telescope",
    "AcknowledgedScanners",
    "PacketClass",
    "ClassifiedCapture",
    "classify_capture",
]
