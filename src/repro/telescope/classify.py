"""Classification and sanitization of raw telescope captures (paper §3.2).

Pipeline, mirroring the paper:

1. decode IPv4+UDP; everything else is non-QUIC noise;
2. source port 443 → candidate *backscatter* (server responses to spoofed
   traffic), destination port 443 → candidate *scan* (client requests);
3. false-positive removal with the QUIC dissector (Wireshark-equivalent);
4. removal of acknowledged research scanners (requests only — their
   documented behaviour would bias version statistics).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.dissector import DissectError, dissect_datagram
from repro.inetdata.asdb import AsDatabase
from repro.netstack.pcap import PcapRecord
from repro.netstack.udp import QUIC_PORT, UdpParseError, decode_udp
from repro.obs import NULL_OBS, Observability
from repro.obs.trace import CAT_SANITIZE
from repro.quic.packet import ParsedLongHeader
from repro.telescope.acknowledged import AcknowledgedScanners


class PacketClass(enum.Enum):
    BACKSCATTER = "backscatter"
    SCAN = "scan"


@dataclass
class CapturedPacket:
    """One sanitized QUIC datagram seen by the telescope."""

    timestamp: float
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    udp_payload_length: int
    packets: list[ParsedLongHeader]
    klass: PacketClass
    #: Paper-style origin label of the *remote* side: hypergiant name or
    #: "Remaining" (the spoofed telescope side carries no information).
    origin: str = "Remaining"

    @property
    def coalesced(self) -> bool:
        return len(self.packets) > 1

    @property
    def remote_ip(self) -> int:
        """The non-telescope endpoint (source for backscatter and scans)."""
        return self.src_ip


@dataclass
class SanitizationStats:
    total_records: int = 0
    non_udp: int = 0
    non_port_443: int = 0
    failed_dissection: int = 0
    acknowledged_scanner: int = 0
    backscatter: int = 0
    scans: int = 0

    @property
    def removed(self) -> int:
        return (
            self.non_udp
            + self.non_port_443
            + self.failed_dissection
            + self.acknowledged_scanner
        )

    @property
    def removed_share(self) -> float:
        return self.removed / self.total_records if self.total_records else 0.0


@dataclass
class ClassifiedCapture:
    """Output of the sanitization pipeline."""

    backscatter: list[CapturedPacket] = field(default_factory=list)
    scans: list[CapturedPacket] = field(default_factory=list)
    stats: SanitizationStats = field(default_factory=SanitizationStats)

    def __len__(self) -> int:
        return len(self.backscatter) + len(self.scans)


def classify_capture(
    records: list[PcapRecord],
    asdb: AsDatabase | None = None,
    acknowledged: AcknowledgedScanners | None = None,
    validate_crypto_scans: bool = True,
    obs: Observability | None = None,
) -> ClassifiedCapture:
    """Run the full sanitization pipeline over raw capture records.

    ``validate_crypto_scans`` additionally AEAD-validates client Initials in
    scan traffic (possible passively because Initial keys derive from the
    DCID); backscatter is validated structurally, as in Wireshark.

    With ``obs`` attached, every removed record emits a ``sanitize:drop``
    trace event and increments the ``sanitize.packets`` counter under its
    drop-stage label; kept records count under ``kept_backscatter`` /
    ``kept_scan``.
    """
    obs = obs or NULL_OBS
    tracer = obs.tracer
    m_packets = (
        obs.metrics.counter("sanitize.packets", ("stage",))
        if obs.metrics is not None
        else None
    )

    def drop(record: PcapRecord, reason: str) -> None:
        if m_packets is not None:
            m_packets.inc_key((reason,))
        if tracer.enabled:
            tracer.emit(
                CAT_SANITIZE,
                "drop",
                time=record.timestamp,
                reason=reason,
                bytes=len(record.data),
            )

    out = ClassifiedCapture()
    stats = out.stats
    for record in records:
        stats.total_records += 1
        try:
            datagram = decode_udp(record.data)
        except (UdpParseError, ValueError):
            stats.non_udp += 1
            drop(record, "non_udp")
            continue
        if datagram.src_port == QUIC_PORT:
            klass = PacketClass.BACKSCATTER
        elif datagram.dst_port == QUIC_PORT:
            klass = PacketClass.SCAN
        else:
            stats.non_port_443 += 1
            drop(record, "non_port_443")
            continue
        try:
            dissected = dissect_datagram(
                datagram.payload,
                validate_crypto=(
                    validate_crypto_scans and klass is PacketClass.SCAN
                ),
            )
        except DissectError:
            stats.failed_dissection += 1
            drop(record, "failed_dissection")
            continue
        if (
            klass is PacketClass.SCAN
            and acknowledged is not None
            and acknowledged.is_acknowledged(datagram.src_ip)
        ):
            stats.acknowledged_scanner += 1
            drop(record, "acknowledged_scanner")
            continue
        captured = CapturedPacket(
            timestamp=record.timestamp,
            src_ip=datagram.src_ip,
            dst_ip=datagram.dst_ip,
            src_port=datagram.src_port,
            dst_port=datagram.dst_port,
            udp_payload_length=len(datagram.payload),
            packets=dissected.packets,
            klass=klass,
            origin=asdb.origin_name(datagram.src_ip) if asdb else "Remaining",
        )
        if klass is PacketClass.BACKSCATTER:
            out.backscatter.append(captured)
            stats.backscatter += 1
            if m_packets is not None:
                m_packets.inc_key(("kept_backscatter",))
        else:
            out.scans.append(captured)
            stats.scans += 1
            if m_packets is not None:
                m_packets.inc_key(("kept_scan",))
    return out
