"""Classification and sanitization of raw telescope captures (paper §3.2).

Pipeline, mirroring the paper:

1. decode IPv4+UDP; everything else is non-QUIC noise;
2. source port 443 → candidate *backscatter* (server responses to spoofed
   traffic), destination port 443 → candidate *scan* (client requests);
3. false-positive removal with the QUIC dissector (Wireshark-equivalent);
4. removal of acknowledged research scanners (requests only — their
   documented behaviour would bias version statistics).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.dissector import DissectError, dissect_datagram
from repro.inetdata.asdb import AsDatabase
from repro.netstack.pcap import PcapRecord
from repro.netstack.udp import QUIC_PORT, UdpParseError, decode_udp
from repro.obs import NULL_OBS, Observability
from repro.obs.trace import CAT_SANITIZE
from repro.quic.packet import ParsedLongHeader
from repro.telescope.acknowledged import AcknowledgedScanners


class PacketClass(enum.Enum):
    BACKSCATTER = "backscatter"
    SCAN = "scan"


@dataclass
class CapturedPacket:
    """One sanitized QUIC datagram seen by the telescope."""

    timestamp: float
    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    udp_payload_length: int
    packets: list[ParsedLongHeader]
    klass: PacketClass
    #: Paper-style origin label of the *remote* side: hypergiant name or
    #: "Remaining" (the spoofed telescope side carries no information).
    origin: str = "Remaining"

    @property
    def coalesced(self) -> bool:
        return len(self.packets) > 1

    @property
    def remote_ip(self) -> int:
        """The non-telescope endpoint (source for backscatter and scans)."""
        return self.src_ip


@dataclass
class SanitizationStats:
    total_records: int = 0
    non_udp: int = 0
    non_port_443: int = 0
    failed_dissection: int = 0
    acknowledged_scanner: int = 0
    backscatter: int = 0
    scans: int = 0

    @property
    def removed(self) -> int:
        return (
            self.non_udp
            + self.non_port_443
            + self.failed_dissection
            + self.acknowledged_scanner
        )

    @property
    def removed_share(self) -> float:
        return self.removed / self.total_records if self.total_records else 0.0


@dataclass
class ClassifiedCapture:
    """Output of the sanitization pipeline."""

    backscatter: list[CapturedPacket] = field(default_factory=list)
    scans: list[CapturedPacket] = field(default_factory=list)
    stats: SanitizationStats = field(default_factory=SanitizationStats)

    def __len__(self) -> int:
        return len(self.backscatter) + len(self.scans)


#: Drop reasons in pipeline order.  Each name doubles as the matching
#: :class:`SanitizationStats` field and the ``sanitize.packets`` counter
#: stage label, which is what lets the columnar cache rebuild the counter
#: values from stored stats without replaying the pipeline.
DROP_REASONS = (
    "non_udp",
    "non_port_443",
    "failed_dissection",
    "acknowledged_scanner",
)


class SanitizeEmitter:
    """Shared obs emission for both sanitization paths.

    :func:`classify_capture` (object path) and the columnar builder in
    ``repro.capstore`` make identical per-record decisions; routing their
    counter increments and ``sanitize:drop`` trace events through one
    emitter keeps the observable surface identical too.
    """

    def __init__(self, obs: Observability | None) -> None:
        obs = obs or NULL_OBS
        self._tracer = obs.tracer
        self._counter = (
            obs.metrics.counter("sanitize.packets", ("stage",))
            if obs.metrics is not None
            else None
        )

    def drop(self, record: PcapRecord, reason: str) -> None:
        if self._counter is not None:
            self._counter.inc_key((reason,))
        if self._tracer.enabled:
            self._tracer.emit(
                CAT_SANITIZE,
                "drop",
                time=record.timestamp,
                reason=reason,
                bytes=len(record.data),
            )

    def kept(self, klass: PacketClass) -> None:
        if self._counter is not None:
            label = (
                "kept_backscatter"
                if klass is PacketClass.BACKSCATTER
                else "kept_scan"
            )
            self._counter.inc_key((label,))


def classify_record(
    record: PcapRecord,
    asdb: AsDatabase | None = None,
    acknowledged: AcknowledgedScanners | None = None,
    validate_crypto_scans: bool = True,
) -> tuple[CapturedPacket | None, str | None]:
    """Classify a single capture record.

    Returns ``(captured, None)`` for kept records and ``(None, reason)``
    for dropped ones, with ``reason`` one of :data:`DROP_REASONS`.  The
    pipeline is stateless per record, which is what makes row-group
    parallel index builds exactly equivalent to a serial pass.
    """
    try:
        datagram = decode_udp(record.data)
    except (UdpParseError, ValueError):
        return None, "non_udp"
    if datagram.src_port == QUIC_PORT:
        klass = PacketClass.BACKSCATTER
    elif datagram.dst_port == QUIC_PORT:
        klass = PacketClass.SCAN
    else:
        return None, "non_port_443"
    try:
        dissected = dissect_datagram(
            datagram.payload,
            validate_crypto=(validate_crypto_scans and klass is PacketClass.SCAN),
        )
    except DissectError:
        return None, "failed_dissection"
    if (
        klass is PacketClass.SCAN
        and acknowledged is not None
        and acknowledged.is_acknowledged(datagram.src_ip)
    ):
        return None, "acknowledged_scanner"
    return (
        CapturedPacket(
            timestamp=record.timestamp,
            src_ip=datagram.src_ip,
            dst_ip=datagram.dst_ip,
            src_port=datagram.src_port,
            dst_port=datagram.dst_port,
            udp_payload_length=len(datagram.payload),
            packets=dissected.packets,
            klass=klass,
            origin=asdb.origin_name(datagram.src_ip) if asdb else "Remaining",
        ),
        None,
    )


def classify_capture(
    records: Iterable[PcapRecord],
    asdb: AsDatabase | None = None,
    acknowledged: AcknowledgedScanners | None = None,
    validate_crypto_scans: bool = True,
    obs: Observability | None = None,
) -> ClassifiedCapture:
    """Run the full sanitization pipeline over raw capture records.

    ``records`` may be any iterable, including the streaming
    :func:`repro.netstack.pcap.iter_pcap` generator.

    ``validate_crypto_scans`` additionally AEAD-validates client Initials in
    scan traffic (possible passively because Initial keys derive from the
    DCID); backscatter is validated structurally, as in Wireshark.

    With ``obs`` attached, every removed record emits a ``sanitize:drop``
    trace event and increments the ``sanitize.packets`` counter under its
    drop-stage label; kept records count under ``kept_backscatter`` /
    ``kept_scan``.
    """
    emitter = SanitizeEmitter(obs)
    out = ClassifiedCapture()
    stats = out.stats
    for record in records:
        stats.total_records += 1
        captured, reason = classify_record(
            record,
            asdb=asdb,
            acknowledged=acknowledged,
            validate_crypto_scans=validate_crypto_scans,
        )
        if captured is None:
            setattr(stats, reason, getattr(stats, reason) + 1)
            emitter.drop(record, reason)
            continue
        if captured.klass is PacketClass.BACKSCATTER:
            out.backscatter.append(captured)
            stats.backscatter += 1
        else:
            out.scans.append(captured)
            stats.scans += 1
        emitter.kept(captured.klass)
    return out
