"""The darknet capture device.

A telescope owns an unused prefix (CAIDA's is a /9) and records every
packet routed to it — scans addressed directly at dark space, and
backscatter: server replies to attack traffic whose spoofed sources fell
inside the prefix.  Captures serialize to standard pcap for external
tooling and deserialize back for the analysis pipeline.
"""

from __future__ import annotations

from typing import BinaryIO, Iterable

from repro.netstack.addr import Prefix
from repro.netstack.pcap import PcapReader, PcapRecord, PcapWriter
from repro.netstack.udp import UdpDatagram, encode_udp
from repro.simnet.network import Device

#: The UCSD network telescope operates a /9; scenarios default to it.
DEFAULT_PREFIX = "44.0.0.0/9"


class Telescope(Device):
    """Records all traffic to its prefix; never responds to anything."""

    def __init__(self, name: str = "telescope", prefix: Prefix | str = DEFAULT_PREFIX) -> None:
        super().__init__(name)
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        self.prefix = prefix
        self.records: list[PcapRecord] = []

    def prefixes(self) -> list[Prefix]:
        return [self.prefix]

    def handle_datagram(self, datagram: UdpDatagram, now: float) -> None:
        self.records.append(PcapRecord(timestamp=now, data=encode_udp(datagram)))

    # -- persistence -----------------------------------------------------------
    def write_pcap(self, fileobj: BinaryIO) -> None:
        PcapWriter(fileobj).write_all(self.records)

    @classmethod
    def load_records(cls, fileobj: BinaryIO) -> list[PcapRecord]:
        return list(PcapReader(fileobj))

    def __len__(self) -> int:
        return len(self.records)
