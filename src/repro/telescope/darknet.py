"""The darknet capture device.

A telescope owns an unused prefix (CAIDA's is a /9) and records every
packet routed to it — scans addressed directly at dark space, and
backscatter: server replies to attack traffic whose spoofed sources fell
inside the prefix.  Captures serialize to standard pcap for external
tooling and deserialize back for the analysis pipeline.
"""

from __future__ import annotations

from typing import BinaryIO, Iterable

from repro.netstack.addr import Prefix
from repro.netstack.capbuf import CaptureBuffer
from repro.netstack.pcap import PcapReader, PcapRecord, PcapWriter
from repro.netstack.udp import QUIC_PORT, UdpDatagram, encode_udp_into
from repro.obs import NULL_OBS, Observability
from repro.obs.trace import CAT_TELESCOPE
from repro.simnet.network import Device

#: The UCSD network telescope operates a /9; scenarios default to it.
DEFAULT_PREFIX = "44.0.0.0/9"

#: Payload-size buckets for the capture histogram (bytes); spans the
#: paper's characteristic datagram sizes (Figure 7).
CAPTURE_SIZE_BOUNDS = (64, 128, 256, 512, 1024, 1200, 1280, 1357, 1472)


class Telescope(Device):
    """Records all traffic to its prefix; never responds to anything."""

    def __init__(
        self,
        name: str = "telescope",
        prefix: Prefix | str = DEFAULT_PREFIX,
        obs: Observability | None = None,
    ) -> None:
        super().__init__(name)
        if isinstance(prefix, str):
            prefix = Prefix.parse(prefix)
        self.prefix = prefix
        #: Columnar packet store; ``self.records`` stays a sequence of
        #: :class:`PcapRecord` (a lazy view) for every existing consumer.
        self.capture = CaptureBuffer()
        self.records = self.capture.records
        obs = obs or NULL_OBS
        self._tracer = obs.tracer
        if obs.metrics is not None:
            self._m_captured = obs.metrics.counter("telescope.captured", ("kind",))
            self._m_bytes = obs.metrics.histogram(
                "telescope.payload_bytes", CAPTURE_SIZE_BOUNDS, ("kind",)
            )
        else:
            self._m_captured = None
            self._m_bytes = None

    def prefixes(self) -> list[Prefix]:
        return [self.prefix]

    def handle_datagram(self, datagram: UdpDatagram, now: float) -> None:
        # Encapsulate straight into the contiguous capture buffer (the
        # flow template appends header + payload with no whole-packet
        # intermediate), then commit the ts/offset/length columns.
        capture = self.capture
        start = len(capture.data)
        encode_udp_into(capture.data, datagram)
        capture.commit(now, start)
        if self._m_captured is not None or self._tracer.enabled:
            # Candidate class from ports alone (sanitization refines later).
            if datagram.src_port == QUIC_PORT:
                kind = "backscatter"
            elif datagram.dst_port == QUIC_PORT:
                kind = "scan"
            else:
                kind = "other"
            if self._m_captured is not None:
                self._m_captured.inc_key((kind,))
                self._m_bytes.observe_key((kind,), len(datagram.payload))
            if self._tracer.enabled:
                self._tracer.emit(
                    CAT_TELESCOPE,
                    "capture",
                    time=now,
                    kind=kind,
                    src_ip=datagram.src_ip,
                    dst_ip=datagram.dst_ip,
                    bytes=len(datagram.payload),
                )

    # -- persistence -----------------------------------------------------------
    def write_pcap(self, fileobj: BinaryIO) -> None:
        self.capture.write_to(PcapWriter(fileobj))

    @classmethod
    def load_records(cls, fileobj: BinaryIO) -> list[PcapRecord]:
        return list(PcapReader(fileobj))

    def __len__(self) -> int:
        return len(self.records)
