"""IP-in-IP encapsulation (RFC 2003) as used by the L4LB → L7LB tunnel.

Katran-style layer-4 load balancers forward the client's packet unchanged,
wrapped in an outer IP header addressed to the chosen layer-7 load
balancer.  The L7LB decapsulates and answers the client directly (direct
server return).
"""

from __future__ import annotations

from repro.netstack.ip import IPv4Header, PROTO_IPIP, decode_ipv4, encode_ipv4
from repro.netstack.udp import UdpDatagram, decode_udp, encode_udp


class EncapError(ValueError):
    """Raised when a packet is not a valid IP-in-IP tunnel packet."""


def encapsulate(inner: UdpDatagram, tunnel_src: int, tunnel_dst: int) -> bytes:
    """Wrap ``inner`` (serialized as IPv4+UDP) in an outer IPv4 header."""
    inner_bytes = encode_udp(inner)
    outer = IPv4Header(src=tunnel_src, dst=tunnel_dst, protocol=PROTO_IPIP)
    return encode_ipv4(outer, inner_bytes)


def decapsulate(packet: bytes) -> tuple[int, int, UdpDatagram]:
    """Unwrap an IP-in-IP packet; returns (tunnel_src, tunnel_dst, inner)."""
    outer, payload = decode_ipv4(packet)
    if outer.protocol != PROTO_IPIP:
        raise EncapError("outer protocol %d is not IP-in-IP" % outer.protocol)
    inner = decode_udp(payload)
    return outer.src, outer.dst, inner
