"""UDP datagrams (RFC 768), including the pseudo-header checksum.

:class:`UdpDatagram` is also the structured packet unit the simulator
routes, so it carries the IP addresses alongside the UDP fields.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro import hotpath
from repro.buffer import Reader, Writer
from repro.hotpath import LruCache
from repro.netstack.checksum import internet_checksum
from repro.netstack.ip import (
    HEADER_LENGTH as IP_HEADER_LENGTH,
    IPv4Header,
    IpParseError,
    PROTO_UDP,
    decode_ipv4,
    encode_ipv4,
)

HEADER_LENGTH = 8

#: The UDP port QUIC servers listen on; the telescope classifies by it.
QUIC_PORT = 443


class UdpParseError(ValueError):
    """Raised when bytes cannot be parsed as a UDP datagram."""


@dataclass(frozen=True)
class UdpDatagram:
    """One UDP datagram with its IP endpoints — the simulator's packet unit."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    payload: bytes
    ttl: int = 64

    @property
    def flow(self) -> tuple[int, int, int, int, int]:
        """The classic 5-tuple (protocol is always UDP here)."""
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port, PROTO_UDP)

    def reply(self, payload: bytes, ttl: int = 64) -> "UdpDatagram":
        """Build the response datagram (endpoints swapped)."""
        return UdpDatagram(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            payload=payload,
            ttl=ttl,
        )

    def with_payload(self, payload: bytes) -> "UdpDatagram":
        return replace(self, payload=payload)


class FlowTemplate:
    """Precomputed IPv4+UDP encapsulation for one flow 5-tuple.

    The 28-byte header skeleton carries every constant field (addresses,
    ports, TTL, flags) and the RFC 1071 checksum's commutativity lets the
    constant terms be summed once:

    * ``ip_partial`` — the word sum of the IPv4 header with Total Length
      and Checksum zeroed; per packet only the length term is added.
    * ``udp_partial`` — the pseudo-header constants plus the UDP ports.
      The UDP Length field appears twice in the checksummed stream (once
      in the pseudo-header, once in the real header), hence the
      ``2 * udp_length`` term per packet.

    Per-packet work is then: splice two length fields, fold two partial
    sums (the payload word sum is the only data-dependent part), splice
    two checksums.  Byte-identical to the Writer-based reference path.
    """

    __slots__ = ("skeleton", "ip_partial", "udp_partial")

    def __init__(
        self, src_ip: int, dst_ip: int, src_port: int, dst_port: int, ttl: int
    ) -> None:
        skeleton = bytearray(IP_HEADER_LENGTH + HEADER_LENGTH)
        skeleton[0] = 0x45  # version 4, IHL 5; DSCP/ECN zero
        skeleton[6:8] = (0x4000).to_bytes(2, "big")  # don't-fragment
        skeleton[8] = ttl
        skeleton[9] = PROTO_UDP
        skeleton[12:16] = src_ip.to_bytes(4, "big")
        skeleton[16:20] = dst_ip.to_bytes(4, "big")
        skeleton[20:22] = src_port.to_bytes(2, "big")
        skeleton[22:24] = dst_port.to_bytes(2, "big")
        self.skeleton = skeleton
        self.ip_partial = (
            0x4500
            + 0x4000
            + ((ttl << 8) | PROTO_UDP)
            + (src_ip >> 16)
            + (src_ip & 0xFFFF)
            + (dst_ip >> 16)
            + (dst_ip & 0xFFFF)
        )
        self.udp_partial = (
            (src_ip >> 16)
            + (src_ip & 0xFFFF)
            + (dst_ip >> 16)
            + (dst_ip & 0xFFFF)
            + PROTO_UDP
            + src_port
            + dst_port
        )

    def _header(self, payload: bytes) -> bytearray:
        udp_length = HEADER_LENGTH + len(payload)
        if udp_length > 0xFFFF:
            raise UdpParseError("UDP datagram too large: %d" % udp_length)
        total_length = IP_HEADER_LENGTH + udp_length
        if total_length > 0xFFFF:
            raise IpParseError("IPv4 packet too large: %d bytes" % total_length)
        header = self.skeleton.copy()
        header[2:4] = total_length.to_bytes(2, "big")
        ip_checksum = internet_checksum(b"", initial=self.ip_partial + total_length)
        header[10:12] = ip_checksum.to_bytes(2, "big")
        header[24:26] = udp_length.to_bytes(2, "big")
        udp_checksum = internet_checksum(
            payload, initial=self.udp_partial + 2 * udp_length
        )
        if udp_checksum == 0:
            udp_checksum = 0xFFFF  # RFC 768: zero means "no checksum"
        header[26:28] = udp_checksum.to_bytes(2, "big")
        return header

    def encode(self, payload: bytes) -> bytes:
        """Serialize one packet of this flow."""
        return bytes(self._header(payload)) + payload

    def encode_into(self, out: bytearray, payload: bytes) -> None:
        """Append one packet of this flow to ``out`` (no final copy)."""
        out += self._header(payload)
        out += payload


_FLOW_TEMPLATES = LruCache(4096)


def flow_template(datagram: UdpDatagram) -> FlowTemplate:
    """Fetch (or build) the cached encapsulation template for a flow."""
    key = (
        datagram.src_ip,
        datagram.dst_ip,
        datagram.src_port,
        datagram.dst_port,
        datagram.ttl,
    )
    return _FLOW_TEMPLATES.get_or_build(key, lambda: FlowTemplate(*key))


def encode_udp(datagram: UdpDatagram) -> bytes:
    """Serialize the full IPv4+UDP packet with both checksums."""
    if hotpath.enabled:
        return flow_template(datagram).encode(datagram.payload)
    return _encode_udp_rebuild(datagram)


def encode_udp_into(out: bytearray, datagram: UdpDatagram) -> None:
    """Append the serialized packet to ``out`` (capture-buffer fast path)."""
    if hotpath.enabled:
        flow_template(datagram).encode_into(out, datagram.payload)
    else:
        out += _encode_udp_rebuild(datagram)


def _encode_udp_rebuild(datagram: UdpDatagram) -> bytes:
    """Writer-based reference encoder (parity baseline for templates)."""
    udp_length = HEADER_LENGTH + len(datagram.payload)
    if udp_length > 0xFFFF:
        raise UdpParseError("UDP datagram too large: %d" % udp_length)
    writer = Writer()
    writer.write_u16(datagram.src_port)
    writer.write_u16(datagram.dst_port)
    writer.write_u16(udp_length)
    writer.write_u16(0)  # checksum placeholder
    writer.write(datagram.payload)
    udp_bytes = bytearray(writer.getvalue())
    pseudo = Writer()
    pseudo.write_u32(datagram.src_ip)
    pseudo.write_u32(datagram.dst_ip)
    pseudo.write_u8(0)
    pseudo.write_u8(PROTO_UDP)
    pseudo.write_u16(udp_length)
    checksum = internet_checksum(pseudo.getvalue() + bytes(udp_bytes))
    if checksum == 0:
        checksum = 0xFFFF  # RFC 768: zero means "no checksum"
    udp_bytes[6:8] = checksum.to_bytes(2, "big")
    ip_header = IPv4Header(
        src=datagram.src_ip,
        dst=datagram.dst_ip,
        protocol=PROTO_UDP,
        ttl=datagram.ttl,
    )
    return encode_ipv4(ip_header, bytes(udp_bytes))


def decode_udp(packet: bytes) -> UdpDatagram:
    """Parse a full IPv4+UDP packet back into a :class:`UdpDatagram`."""
    ip_header, ip_payload = decode_ipv4(packet)
    if ip_header.protocol != PROTO_UDP:
        raise UdpParseError("IP protocol %d is not UDP" % ip_header.protocol)
    if len(ip_payload) < HEADER_LENGTH:
        raise UdpParseError("payload shorter than UDP header")
    reader = Reader(ip_payload)
    src_port = reader.read_u16()
    dst_port = reader.read_u16()
    udp_length = reader.read_u16()
    if udp_length < HEADER_LENGTH or udp_length > len(ip_payload):
        raise UdpParseError("bad UDP length %d" % udp_length)
    reader.read_u16()  # checksum
    payload = ip_payload[HEADER_LENGTH:udp_length]
    return UdpDatagram(
        src_ip=ip_header.src,
        dst_ip=ip_header.dst,
        src_port=src_port,
        dst_port=dst_port,
        payload=payload,
        ttl=ip_header.ttl,
    )
