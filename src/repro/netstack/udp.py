"""UDP datagrams (RFC 768), including the pseudo-header checksum.

:class:`UdpDatagram` is also the structured packet unit the simulator
routes, so it carries the IP addresses alongside the UDP fields.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.buffer import Reader, Writer
from repro.netstack.checksum import internet_checksum
from repro.netstack.ip import IPv4Header, PROTO_UDP, decode_ipv4, encode_ipv4

HEADER_LENGTH = 8

#: The UDP port QUIC servers listen on; the telescope classifies by it.
QUIC_PORT = 443


class UdpParseError(ValueError):
    """Raised when bytes cannot be parsed as a UDP datagram."""


@dataclass(frozen=True)
class UdpDatagram:
    """One UDP datagram with its IP endpoints — the simulator's packet unit."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    payload: bytes
    ttl: int = 64

    @property
    def flow(self) -> tuple[int, int, int, int, int]:
        """The classic 5-tuple (protocol is always UDP here)."""
        return (self.src_ip, self.src_port, self.dst_ip, self.dst_port, PROTO_UDP)

    def reply(self, payload: bytes, ttl: int = 64) -> "UdpDatagram":
        """Build the response datagram (endpoints swapped)."""
        return UdpDatagram(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            payload=payload,
            ttl=ttl,
        )

    def with_payload(self, payload: bytes) -> "UdpDatagram":
        return replace(self, payload=payload)


def encode_udp(datagram: UdpDatagram) -> bytes:
    """Serialize the full IPv4+UDP packet with both checksums."""
    udp_length = HEADER_LENGTH + len(datagram.payload)
    if udp_length > 0xFFFF:
        raise UdpParseError("UDP datagram too large: %d" % udp_length)
    writer = Writer()
    writer.write_u16(datagram.src_port)
    writer.write_u16(datagram.dst_port)
    writer.write_u16(udp_length)
    writer.write_u16(0)  # checksum placeholder
    writer.write(datagram.payload)
    udp_bytes = bytearray(writer.getvalue())
    pseudo = Writer()
    pseudo.write_u32(datagram.src_ip)
    pseudo.write_u32(datagram.dst_ip)
    pseudo.write_u8(0)
    pseudo.write_u8(PROTO_UDP)
    pseudo.write_u16(udp_length)
    checksum = internet_checksum(pseudo.getvalue() + bytes(udp_bytes))
    if checksum == 0:
        checksum = 0xFFFF  # RFC 768: zero means "no checksum"
    udp_bytes[6:8] = checksum.to_bytes(2, "big")
    ip_header = IPv4Header(
        src=datagram.src_ip,
        dst=datagram.dst_ip,
        protocol=PROTO_UDP,
        ttl=datagram.ttl,
    )
    return encode_ipv4(ip_header, bytes(udp_bytes))


def decode_udp(packet: bytes) -> UdpDatagram:
    """Parse a full IPv4+UDP packet back into a :class:`UdpDatagram`."""
    ip_header, ip_payload = decode_ipv4(packet)
    if ip_header.protocol != PROTO_UDP:
        raise UdpParseError("IP protocol %d is not UDP" % ip_header.protocol)
    if len(ip_payload) < HEADER_LENGTH:
        raise UdpParseError("payload shorter than UDP header")
    reader = Reader(ip_payload)
    src_port = reader.read_u16()
    dst_port = reader.read_u16()
    udp_length = reader.read_u16()
    if udp_length < HEADER_LENGTH or udp_length > len(ip_payload):
        raise UdpParseError("bad UDP length %d" % udp_length)
    reader.read_u16()  # checksum
    payload = ip_payload[HEADER_LENGTH:udp_length]
    return UdpDatagram(
        src_ip=ip_header.src,
        dst_ip=ip_header.dst,
        src_port=src_port,
        dst_port=dst_port,
        payload=payload,
        ttl=ip_header.ttl,
    )
