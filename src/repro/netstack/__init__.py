"""IPv4/UDP packet codecs, IP-in-IP encapsulation, and pcap files.

The simulator moves structured :class:`UdpDatagram` objects for speed; the
telescope serializes them to real IPv4+UDP bytes (checksums included) when
writing captures, and the analysis pipeline parses those bytes back — so
the passive toolchain works equally on simulated captures and on real
raw-IP pcaps.
"""

from repro.netstack.addr import format_ip, parse_ip, Prefix
from repro.netstack.ip import IPv4Header, decode_ipv4, encode_ipv4
from repro.netstack.udp import UdpDatagram, decode_udp, encode_udp
from repro.netstack.pcap import PcapReader, PcapWriter, PcapRecord

__all__ = [
    "parse_ip",
    "format_ip",
    "Prefix",
    "IPv4Header",
    "encode_ipv4",
    "decode_ipv4",
    "UdpDatagram",
    "encode_udp",
    "decode_udp",
    "PcapReader",
    "PcapWriter",
    "PcapRecord",
]
