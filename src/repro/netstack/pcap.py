"""Classic libpcap file format reader/writer (raw-IP link type).

Telescope captures are stored as standard pcap so they can be inspected
with external tooling, and so the analysis pipeline can equally consume
real-world raw-IP captures.  :func:`merge_pcap_files` k-way-merges
time-sorted per-worker captures (``repro simulate --workers N``) into one
time-ordered file while holding only one record per input in memory.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Iterator, Sequence, Union

MAGIC = 0xA1B2C3D4
MAGIC_SWAPPED = 0xD4C3B2A1
VERSION_MAJOR = 2
VERSION_MINOR = 4
LINKTYPE_RAW = 101  # packets start with the IPv4/IPv6 header

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")

#: Size of the pcap global header — the first record boundary.  Streaming
#: readers treat a file shorter than this as "not started yet".
GLOBAL_HEADER_SIZE = _GLOBAL_HEADER.size


class PcapError(ValueError):
    """Raised on malformed pcap files."""


@dataclass(frozen=True)
class PcapRecord:
    """One captured packet: timestamp (float seconds) and raw bytes."""

    timestamp: float
    data: bytes

    @property
    def ts_sec(self) -> int:
        return int(self.timestamp)

    @property
    def ts_usec(self) -> int:
        return int(round((self.timestamp - int(self.timestamp)) * 1_000_000))


class PcapWriter:
    """Writes classic pcap; use as a context manager."""

    def __init__(self, fileobj: BinaryIO, linktype: int = LINKTYPE_RAW, snaplen: int = 65535) -> None:
        self._file = fileobj
        self._file.write(
            _GLOBAL_HEADER.pack(
                MAGIC, VERSION_MAJOR, VERSION_MINOR, 0, 0, snaplen, linktype
            )
        )
        self._snaplen = snaplen

    def write(self, record: PcapRecord) -> None:
        data = record.data[: self._snaplen]
        self._file.write(
            _RECORD_HEADER.pack(
                record.ts_sec, record.ts_usec, len(data), len(record.data)
            )
        )
        self._file.write(data)

    def write_all(self, records: Iterable[PcapRecord]) -> None:
        for record in records:
            self.write(record)

    def write_raw(self, ts_sec: int, ts_usec: int, data) -> None:
        """Write one record from pre-split timestamp parts and a buffer.

        ``data`` may be any bytes-like object (the columnar capture
        buffer passes ``memoryview`` slices, avoiding per-record copies).
        """
        length = len(data)
        included = data[: self._snaplen] if length > self._snaplen else data
        self._file.write(
            _RECORD_HEADER.pack(ts_sec, ts_usec, len(included), length)
        )
        self._file.write(included)

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self._file.flush()


class PcapReader:
    """Iterates :class:`PcapRecord` objects from a classic pcap file."""

    def __init__(self, fileobj: BinaryIO) -> None:
        self._file = fileobj
        header = fileobj.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise PcapError("truncated pcap global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic == MAGIC:
            self._endian = "<"
        elif magic == MAGIC_SWAPPED:
            self._endian = ">"
        else:
            raise PcapError("bad pcap magic 0x%08x" % magic)
        fields = struct.unpack(self._endian + "IHHiIII", header)
        self.linktype = fields[6]
        self.snaplen = fields[5]
        self._record_struct = struct.Struct(self._endian + "IIII")

    def __iter__(self) -> Iterator[PcapRecord]:
        while True:
            header = self._file.read(self._record_struct.size)
            if not header:
                return
            if len(header) < self._record_struct.size:
                raise PcapError("truncated pcap record header")
            ts_sec, ts_usec, incl_len, _orig_len = self._record_struct.unpack(header)
            data = self._file.read(incl_len)
            if len(data) < incl_len:
                raise PcapError("truncated pcap record body")
            yield PcapRecord(timestamp=ts_sec + ts_usec / 1_000_000, data=data)


def write_pcap(path: str, records: Iterable[PcapRecord]) -> None:
    """Convenience: write ``records`` to ``path``."""
    with open(path, "wb") as fileobj:
        PcapWriter(fileobj).write_all(records)


def iter_pcap(path: str) -> Iterator[PcapRecord]:
    """Stream records from ``path`` without materializing the file.

    This is the hot-path reader: the analysis pipeline dissects records
    as they stream by (``repro.capstore``), so a multi-GB capture never
    has to fit in memory as a Python list.
    """
    with open(path, "rb") as fileobj:
        yield from PcapReader(fileobj)


def iter_pcap_range(path: str, offset: int, count: int) -> Iterator[PcapRecord]:
    """Stream ``count`` records starting at byte ``offset``.

    ``offset`` must point at a record header (use
    :func:`scan_pcap_offsets`); this is how parallel index builders hand
    each worker its own contiguous row group of one pcap.
    """
    with open(path, "rb") as fileobj:
        reader = PcapReader(fileobj)  # validates magic, fixes endianness
        fileobj.seek(offset)
        records = iter(reader)
        for _ in range(count):
            try:
                yield next(records)
            except StopIteration:
                raise PcapError(
                    "row group at offset %d ends before %d records" % (offset, count)
                ) from None


def read_pcap(path: str) -> list[PcapRecord]:
    """Convenience: read all records from ``path``.

    Prefer :func:`iter_pcap` in hot paths — this helper exists for small
    captures and tests where a list is genuinely wanted.
    """
    return list(iter_pcap(path))


def scan_pcap_offsets(path: str) -> list[int]:
    """Byte offset of every record header in ``path``.

    Seeks over the payloads, so the scan costs one header read per record
    — cheap enough to plan row-group splits before a parallel dissection
    pass.  Raises :class:`PcapError` on truncated files.
    """
    offsets: list[int] = []
    with open(path, "rb") as fileobj:
        head = fileobj.read(_GLOBAL_HEADER.size)
        if len(head) < _GLOBAL_HEADER.size:
            raise PcapError("truncated pcap global header")
        magic = struct.unpack("<I", head[:4])[0]
        if magic == MAGIC:
            endian = "<"
        elif magic == MAGIC_SWAPPED:
            endian = ">"
        else:
            raise PcapError("bad pcap magic 0x%08x" % magic)
        record_struct = struct.Struct(endian + "IIII")
        fileobj.seek(0, 2)
        end = fileobj.tell()
        pos = _GLOBAL_HEADER.size
        while pos < end:
            fileobj.seek(pos)
            header = fileobj.read(record_struct.size)
            if len(header) < record_struct.size:
                raise PcapError("truncated pcap record header")
            _sec, _usec, incl_len, _orig = record_struct.unpack(header)
            if pos + record_struct.size + incl_len > end:
                raise PcapError("truncated pcap record body")
            offsets.append(pos)
            pos += record_struct.size + incl_len
    return offsets


def scan_pcap_tail(path: str, start: int = _GLOBAL_HEADER.size) -> tuple[list[int], int]:
    """Offsets of the *complete* records from byte ``start`` to EOF.

    The streaming twin of :func:`scan_pcap_offsets`: instead of raising on
    a truncated record it stops in front of it, returning ``(offsets,
    end)`` where ``end`` is the byte offset one past the last complete
    record.  A live capture being appended to by another process always
    has a well-defined complete prefix — a reader that only consumes up to
    ``end`` can never observe a torn packet record, and the next poll
    resumes at ``end`` once the writer has finished the record.

    ``start`` must point at a record boundary (typically the ``end`` of a
    previous scan, or the position after the global header).
    """
    offsets: list[int] = []
    with open(path, "rb") as fileobj:
        head = fileobj.read(_GLOBAL_HEADER.size)
        if len(head) < _GLOBAL_HEADER.size:
            return [], start  # global header itself still being written
        magic = struct.unpack("<I", head[:4])[0]
        if magic == MAGIC:
            endian = "<"
        elif magic == MAGIC_SWAPPED:
            endian = ">"
        else:
            raise PcapError("bad pcap magic 0x%08x" % magic)
        record_struct = struct.Struct(endian + "IIII")
        fileobj.seek(0, 2)
        file_end = fileobj.tell()
        pos = max(start, _GLOBAL_HEADER.size)
        while pos < file_end:
            fileobj.seek(pos)
            header = fileobj.read(record_struct.size)
            if len(header) < record_struct.size:
                break  # torn record header: the writer is mid-append
            _sec, _usec, incl_len, _orig = record_struct.unpack(header)
            if pos + record_struct.size + incl_len > file_end:
                break  # torn record body
            offsets.append(pos)
            pos += record_struct.size + incl_len
    return offsets, pos


def record_sort_key(record: PcapRecord) -> tuple:
    """The canonical capture order: quantized timestamp, then raw bytes.

    Comparing the *quantized* (second, microsecond) pair rather than the
    float timestamp guarantees that the order of records is preserved by
    a write/read round-trip, and the ``data`` tie-break makes the order a
    property of the record multiset alone — independent of how records
    were partitioned across shard files.
    """
    return (record.ts_sec, record.ts_usec, record.data)


def merge_pcap_files(
    paths: Sequence[str], output: Union[str, BinaryIO]
) -> int:
    """K-way merge time-sorted pcap files into one time-ordered pcap.

    Each input must already be sorted by :func:`record_sort_key` (shard
    workers sort before writing); the merge then streams with one pending
    record per input.  Returns the number of records written.
    """
    files = [open(path, "rb") for path in paths]
    count = 0
    try:
        merged = heapq.merge(
            *(iter(PcapReader(fileobj)) for fileobj in files), key=record_sort_key
        )
        if isinstance(output, str):
            with open(output, "wb") as fileobj:
                writer = PcapWriter(fileobj)
                for record in merged:
                    writer.write(record)
                    count += 1
        else:
            writer = PcapWriter(output)
            for record in merged:
                writer.write(record)
                count += 1
    finally:
        for fileobj in files:
            fileobj.close()
    return count
