"""Columnar capture buffer — the write-side sibling of the capstore.

The telescope used to hold one :class:`~repro.netstack.pcap.PcapRecord`
(a frozen dataclass owning its own ``bytes``) per captured packet; a
month of backscatter is hundreds of thousands of small heap objects.
:class:`CaptureBuffer` stores the same information as parallel ``array``
columns — timestamp / offset / length — over one contiguous
``bytearray``, so appending a packet is two array appends plus a
``bytearray`` extend (which flow templates write into directly, see
:func:`repro.netstack.udp.encode_udp_into`), and writing the pcap
streams ``memoryview`` slices without materializing records.

:attr:`CaptureBuffer.records` is a read-only sequence view that yields
``PcapRecord`` objects on demand, so every existing consumer (the
classifier, shard heartbeats, tests) keeps its interface.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Union

from repro.netstack.pcap import PcapRecord, PcapWriter, record_sort_key


class CaptureRecords:
    """Read-only sequence view over a :class:`CaptureBuffer`.

    Materializes one :class:`PcapRecord` per access; ``append`` is
    provided for the few call sites (tests, synthetic captures) that
    still push prebuilt records.
    """

    __slots__ = ("_buffer",)

    def __init__(self, buffer: "CaptureBuffer") -> None:
        self._buffer = buffer

    def __len__(self) -> int:
        return len(self._buffer)

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[PcapRecord, List[PcapRecord]]:
        if isinstance(index, slice):
            return [self._buffer.record(i) for i in range(*index.indices(len(self)))]
        return self._buffer.record(index)

    def __iter__(self) -> Iterator[PcapRecord]:
        return iter(self._buffer)

    def append(self, record: PcapRecord) -> None:
        self._buffer.append(record.timestamp, record.data)


class CaptureBuffer:
    """Parallel ts/offset/length columns over one contiguous byte buffer."""

    __slots__ = ("times", "offsets", "lengths", "data", "records")

    def __init__(self) -> None:
        self.times = array("d")
        self.offsets = array("Q")
        self.lengths = array("Q")
        self.data = bytearray()
        self.records = CaptureRecords(self)

    def __len__(self) -> int:
        return len(self.times)

    def append(self, timestamp: float, data: bytes) -> None:
        """Append one already-encoded packet."""
        start = len(self.data)
        self.data += data
        self.commit(timestamp, start)

    def commit(self, timestamp: float, start: int) -> None:
        """Record a packet whose bytes were just written to ``data``.

        Callers that encode in place (flow templates) extend ``data``
        themselves and commit the region ``[start:len(data))``.
        """
        self.times.append(timestamp)
        self.offsets.append(start)
        self.lengths.append(len(self.data) - start)

    def record(self, index: int) -> PcapRecord:
        """Materialize one packet as a :class:`PcapRecord`."""
        if index < 0:
            index += len(self.times)
        if not 0 <= index < len(self.times):
            raise IndexError("capture record index out of range")
        offset = self.offsets[index]
        return PcapRecord(
            timestamp=self.times[index],
            data=bytes(self.data[offset : offset + self.lengths[index]]),
        )

    def __iter__(self) -> Iterator[PcapRecord]:
        for index in range(len(self.times)):
            yield self.record(index)

    def sorted_records(self) -> List[PcapRecord]:
        """All packets in canonical pcap merge order."""
        return sorted(self, key=record_sort_key)

    def write_to(self, writer: PcapWriter) -> None:
        """Stream every packet to ``writer`` as memoryview slices."""
        view = memoryview(self.data)
        for index in range(len(self.times)):
            timestamp = self.times[index]
            offset = self.offsets[index]
            ts_sec = int(timestamp)
            writer.write_raw(
                ts_sec,
                int(round((timestamp - ts_sec) * 1_000_000)),
                view[offset : offset + self.lengths[index]],
            )
