"""RFC 1071 Internet checksum (ones-complement sum of 16-bit words).

The capture path serializes every telescope packet, so the word sum runs
on numpy when available; the pure-Python fallback keeps the module
dependency-free for small inputs.
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None


def _word_sum(data: bytes) -> int:
    """Sum of big-endian 16-bit words, trailing odd byte padded with zero."""
    if len(data) % 2:
        data = data + b"\x00"
    if _np is not None and len(data) >= 64:
        return int(_np.frombuffer(data, dtype=">u2").sum(dtype=_np.uint64))
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    return total


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """Compute the 16-bit Internet checksum over ``data``."""
    total = initial + _word_sum(data)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if ``data`` (checksum field included) sums to 0xFFFF."""
    total = _word_sum(data)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
