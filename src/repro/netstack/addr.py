"""IPv4 addresses as integers, plus CIDR prefix arithmetic.

Addresses are plain ints in hot paths (the simulator routes millions of
packets); these helpers convert to and from dotted-quad strings and model
CIDR prefixes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

IPV4_MAX = (1 << 32) - 1


def parse_ip(text: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError("invalid IPv4 address %r" % text)
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError("invalid IPv4 octet %r in %r" % (part, text))
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Format an integer as a dotted-quad IPv4 address."""
    if not 0 <= value <= IPV4_MAX:
        raise ValueError("IPv4 address out of range: %d" % value)
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class Prefix:
    """A CIDR prefix such as 157.240.0.0/24."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError("prefix length must be 0..32")
        mask = self.mask
        if self.network & ~mask & IPV4_MAX:
            raise ValueError(
                "network %s has host bits set for /%d"
                % (format_ip(self.network), self.length)
            )

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        address, _, length = text.partition("/")
        if not length:
            raise ValueError("prefix %r missing /length" % text)
        return cls(parse_ip(address), int(length))

    @property
    def mask(self) -> int:
        return (IPV4_MAX << (32 - self.length)) & IPV4_MAX if self.length else 0

    @property
    def size(self) -> int:
        return 1 << (32 - self.length)

    @property
    def first(self) -> int:
        return self.network

    @property
    def last(self) -> int:
        return self.network | (~self.mask & IPV4_MAX)

    def __contains__(self, address: int) -> bool:
        return (address & self.mask) == self.network

    def __str__(self) -> str:
        return "%s/%d" % (format_ip(self.network), self.length)

    def host(self, index: int) -> int:
        """Return the ``index``-th address in the prefix."""
        if not 0 <= index < self.size:
            raise ValueError("host index %d out of range for %s" % (index, self))
        return self.network + index

    def random_host(self, rng: random.Random) -> int:
        return self.network + rng.randrange(self.size)

    def subnets(self, new_length: int) -> list["Prefix"]:
        """Split into equal subnets of ``new_length``."""
        if new_length < self.length:
            raise ValueError("cannot split /%d into /%d" % (self.length, new_length))
        step = 1 << (32 - new_length)
        return [
            Prefix(self.network + i * step, new_length)
            for i in range(1 << (new_length - self.length))
        ]
