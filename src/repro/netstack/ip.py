"""IPv4 header encoding/decoding (RFC 791), options-free."""

from __future__ import annotations

from dataclasses import dataclass

from repro.buffer import Reader, Writer
from repro.netstack.checksum import internet_checksum

PROTO_ICMP = 1
PROTO_IPIP = 4  # IP-in-IP encapsulation, used by the L4LB tunnel
PROTO_TCP = 6
PROTO_UDP = 17

HEADER_LENGTH = 20


class IpParseError(ValueError):
    """Raised when bytes cannot be parsed as an IPv4 packet."""


@dataclass
class IPv4Header:
    src: int
    dst: int
    protocol: int = PROTO_UDP
    ttl: int = 64
    identification: int = 0
    dscp_ecn: int = 0
    flags_fragment: int = 0x4000  # don't-fragment, offset 0
    total_length: int = 0  # filled in by encode_ipv4


def encode_ipv4(header: IPv4Header, payload: bytes) -> bytes:
    """Serialize header+payload with a correct header checksum."""
    total_length = HEADER_LENGTH + len(payload)
    if total_length > 0xFFFF:
        raise IpParseError("IPv4 packet too large: %d bytes" % total_length)
    writer = Writer()
    writer.write_u8(0x45)  # version 4, IHL 5
    writer.write_u8(header.dscp_ecn)
    writer.write_u16(total_length)
    writer.write_u16(header.identification)
    writer.write_u16(header.flags_fragment)
    writer.write_u8(header.ttl)
    writer.write_u8(header.protocol)
    writer.write_u16(0)  # checksum placeholder
    writer.write_u32(header.src)
    writer.write_u32(header.dst)
    raw = bytearray(writer.getvalue())
    checksum = internet_checksum(bytes(raw))
    raw[10:12] = checksum.to_bytes(2, "big")
    return bytes(raw) + payload


def decode_ipv4(data: bytes) -> tuple[IPv4Header, bytes]:
    """Parse an IPv4 packet; returns (header, payload)."""
    if len(data) < HEADER_LENGTH:
        raise IpParseError("packet shorter than IPv4 header")
    reader = Reader(data)
    version_ihl = reader.read_u8()
    if version_ihl >> 4 != 4:
        raise IpParseError("not IPv4 (version %d)" % (version_ihl >> 4))
    ihl = (version_ihl & 0x0F) * 4
    if ihl < HEADER_LENGTH or ihl > len(data):
        raise IpParseError("bad IHL %d" % ihl)
    dscp_ecn = reader.read_u8()
    total_length = reader.read_u16()
    if total_length > len(data) or total_length < ihl:
        raise IpParseError("bad total length %d" % total_length)
    identification = reader.read_u16()
    flags_fragment = reader.read_u16()
    ttl = reader.read_u8()
    protocol = reader.read_u8()
    reader.read_u16()  # checksum; validity is the caller's concern
    src = reader.read_u32()
    dst = reader.read_u32()
    header = IPv4Header(
        src=src,
        dst=dst,
        protocol=protocol,
        ttl=ttl,
        identification=identification,
        dscp_ecn=dscp_ecn,
        flags_fragment=flags_fragment,
        total_length=total_length,
    )
    return header, data[ihl:total_length]
